//! Criterion benchmarks for the paper's own machinery: distillation
//! throughput (it must be cheap — one of the model's three constraints,
//! §3.2.1), modulation-layer per-packet cost, and the kernel ring
//! buffer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use distill::{distill, distill_stream, DistillConfig, Distiller};
use modulate::{Modulator, TickClock};
use netsim::{SimRng, SimTime};
use netstack::{Direction, LinkShim, ShimRelease};
use tracekit::format::{encode_trace, ChunkDecoder, TraceDecoder};
use tracekit::{
    Dir, PacketRecord, ProtoInfo, QualityTuple, ReplayTrace, RingBuffer, Trace, TraceRecord,
    VecStream,
};

/// Synthesize a trace of `secs` perfect ping triplets.
fn synth_trace(secs: u64) -> Trace {
    let mut t = Trace::new("h", "synth", 1);
    let (s1, s2) = (106u32, 542u32);
    let (f, vb, vr) = (2e-3, 4e-6, 0.8e-6);
    let v: f64 = vb + vr;
    for g in 0..secs {
        let base_ns = g * 1_000_000_000;
        for k in 0..3u16 {
            let seq = (g as u16).wrapping_mul(3).wrapping_add(k);
            let wire = if k == 0 { s1 } else { s2 };
            let send_ns = base_ns + k as u64;
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: send_ns,
                dir: Dir::Out,
                wire_len: wire,
                proto: ProtoInfo::IcmpEcho {
                    ident: 1,
                    seq,
                    payload_len: wire - 42,
                    gen_ts_ns: send_ns,
                },
            }));
            let s = wire as f64;
            let rtt = match k {
                0 | 1 => 2.0 * (f + s * v),
                _ => 2.0 * (f + s * v) + s * vb,
            };
            let rtt_ns = (rtt * 1e9) as u64;
            t.records.push(TraceRecord::Packet(PacketRecord {
                timestamp_ns: send_ns + rtt_ns,
                dir: Dir::In,
                wire_len: wire,
                proto: ProtoInfo::IcmpEchoReply {
                    ident: 1,
                    seq,
                    payload_len: wire - 42,
                    rtt_ns,
                },
            }));
        }
    }
    t.records.sort_by_key(|r| r.timestamp_ns());
    t
}

fn bench_distillation(c: &mut Criterion) {
    let trace = synth_trace(600); // 10 minutes of probes
    let mut g = c.benchmark_group("distill");
    g.throughput(Throughput::Elements(trace.records.len() as u64));
    g.bench_function("distill_10min_trace", |b| {
        b.iter(|| {
            let replay = distill(std::hint::black_box(&trace), &DistillConfig::default());
            assert!(replay.is_valid());
        });
    });
    g.finish();
}

fn bench_streaming_distillation(c: &mut Criterion) {
    // The incremental operator over the same 10-minute trace: identical
    // output to the batch path, but O(window) live state — this is the
    // configuration live mode runs in.
    let trace = synth_trace(600);
    let mut g = c.benchmark_group("distill");
    g.throughput(Throughput::Elements(trace.records.len() as u64));
    g.bench_function("distill_stream_10min_trace", |b| {
        b.iter(|| {
            let mut sink: Vec<QualityTuple> = Vec::new();
            let mut stream = VecStream::new(std::hint::black_box(trace.records.clone()));
            let stats = distill_stream(&mut stream, &DistillConfig::default(), &mut sink).unwrap();
            assert!(sink.len() > 500);
            assert!(stats.peak_window_entries < 64, "state not O(window)");
        });
    });
    g.bench_function("distiller_push_10min_trace", |b| {
        // Push-side only (no stream indirection): the per-record cost a
        // collection daemon would pay feeding records as they arrive.
        b.iter(|| {
            let mut sink: Vec<QualityTuple> = Vec::new();
            let mut d = Distiller::new(&DistillConfig::default());
            for rec in std::hint::black_box(&trace.records) {
                d.push_record(rec, &mut sink);
            }
            let stats = d.finish(&mut sink);
            assert!(stats.tuples > 500);
        });
    });
    g.finish();
}

fn bench_chunked_decode(c: &mut Criterion) {
    // Incremental binary decode in 64 KiB chunks vs the trace size:
    // the buffering `TraceDecoder` (quarantine path) against the
    // zero-copy `ChunkDecoder` (production path).
    let trace = synth_trace(600);
    let bytes = encode_trace(&trace);
    let mut g = c.benchmark_group("tracekit");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("chunked_decode_10min_trace", |b| {
        b.iter(|| {
            let mut dec = TraceDecoder::new();
            let mut n = 0usize;
            for chunk in std::hint::black_box(&bytes).chunks(64 * 1024) {
                dec.feed(chunk);
                while let Some(_r) = dec.next_record().unwrap() {
                    n += 1;
                }
            }
            dec.finish().unwrap();
            assert_eq!(n, trace.records.len());
        });
    });
    g.bench_function("zero_copy_decode_10min_trace", |b| {
        let mut batch: Vec<TraceRecord> = Vec::new();
        b.iter(|| {
            let mut dec = ChunkDecoder::new();
            let mut n = 0usize;
            for chunk in std::hint::black_box(&bytes).chunks(64 * 1024) {
                dec.decode_chunk(chunk, &mut batch).unwrap();
                n += batch.len();
                batch.clear();
            }
            dec.finish().unwrap();
            assert_eq!(n, trace.records.len());
        });
    });
    g.finish();
}

fn bench_modulation_layer(c: &mut Criterion) {
    let replay = ReplayTrace::constant(
        "bench",
        netsim::SimDuration::from_secs(3600),
        netsim::SimDuration::from_millis(2),
        4000.0,
        800.0,
        0.01,
    );
    let mut g = c.benchmark_group("modulate");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("offer_collect_10k_packets", |b| {
        // The shim-timer shape the host actually produces: frames that
        // arrive within one 10 ms modulation tick are offered as one
        // batch and the due queue is drained once per tick into a
        // reused buffer, not once per packet. Frame buffers cycle
        // through a pool the way NetBSD mbufs do — released frames are
        // offered again — so the number prices the modulation layer,
        // not the allocator (which otherwise dominates at ~300 ns per
        // 1514-byte frame with this much held backlog).
        let per_tick = 100u64;
        let mut out: Vec<ShimRelease> = Vec::new();
        let mut pool: Vec<Vec<u8>> = Vec::new();
        b.iter(|| {
            let mut m = Modulator::from_replay(replay.clone()).with_clock(TickClock::netbsd());
            let mut rng = SimRng::seed_from_u64(1);
            m.begin(SimTime::ZERO);
            let mut released = 0u64;
            let recycle = |out: &mut Vec<ShimRelease>, pool: &mut Vec<Vec<u8>>| {
                let k = out.len() as u64;
                pool.extend(out.drain(..).map(|rel| rel.bytes));
                k
            };
            for tick in 0..n / per_tick {
                let now = SimTime::from_millis(tick * 10);
                m.offer_batch(
                    Direction::Outbound,
                    (0..per_tick).map(|_| pool.pop().unwrap_or_else(|| vec![0u8; 1514])),
                    now,
                    &mut rng,
                    &mut out,
                );
                released += recycle(&mut out, &mut pool);
                m.collect_due_into(now, &mut rng, &mut out);
                released += recycle(&mut out, &mut pool);
            }
            m.collect_due_into(SimTime::from_secs(4000), &mut rng, &mut out);
            released += recycle(&mut out, &mut pool);
            assert!(released > 0);
        });
    });
    g.finish();
}

fn bench_ring_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracekit");
    let n = 100_000u64;
    let rec = |i: u64| {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: i,
            dir: Dir::Out,
            wire_len: 100,
            proto: ProtoInfo::Other { protocol: 1 },
        })
    };
    g.throughput(Throughput::Elements(n));
    g.bench_function("ringbuf_push_100k", |b| {
        // Pure push cost: rounds of capacity-many stores, cleared
        // between rounds so every push takes the store path (a full
        // ring rejects in O(1), which would make the number a lie).
        b.iter(|| {
            let mut rb = RingBuffer::new(4096);
            for round in 0..n / 4096 {
                for i in 0..4096 {
                    rb.push(rec(round * 4096 + i));
                }
                rb.clear();
            }
            assert_eq!(rb.total_pushed(), (n / 4096) * 4096);
        });
    });
    g.bench_function("ringbuf_drain_100k", |b| {
        // Refill + wholesale drain in capacity-sized rounds. The push
        // half above prices the refill, so the delta between the two
        // entries is the drain cost proper.
        b.iter(|| {
            let mut rb = RingBuffer::new(4096);
            let mut out = 0usize;
            for round in 0..n / 4096 {
                for i in 0..4096 {
                    rb.push(rec(round * 4096 + i));
                }
                out += rb.drain(usize::MAX, round).len();
            }
            assert!(out > 0);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distillation,
    bench_streaming_distillation,
    bench_chunked_decode,
    bench_modulation_layer,
    bench_ring_buffer
);
criterion_main!(benches);
