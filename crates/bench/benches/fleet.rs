//! Criterion benchmark for the fleet engine: 10 000 concurrent mobile
//! clients under one process.
//!
//! The entry prices the whole per-client pipeline — channel-model
//! synthesis, per-client modulation through narrow pooled calendar
//! queues, the shared station/core hops, and manifest assembly — at
//! the headline client count. The walk is shortened to 10 virtual
//! seconds so one iteration stays around a second of wall time; the
//! client count, not the walk length, is what the entry guards (the
//! engine's cost is linear in events, and events scale with
//! clients × duration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use emu::{fleet_run, Exec, FleetPlan};
use netsim::SimDuration;
use obs::TelemetryConfig;
use wavelan::Scenario;

fn base_plan(clients: u32) -> FleetPlan {
    FleetPlan::new(Scenario::porter(), clients)
        .with_duration(SimDuration::from_secs(10))
        .with_probe_interval(SimDuration::from_millis(500))
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    let clients = 10_000u32;
    g.sample_size(10);
    g.throughput(Throughput::Elements(u64::from(clients)));
    g.bench_function("fleet_10k", |b| {
        let plan = base_plan(clients);
        b.iter(|| {
            let out = fleet_run(&plan, &Exec::serial());
            assert_eq!(out.manifests.len(), clients as usize);
            assert!(out.report.released_packets > 0);
            out.report.released_packets
        });
    });
    // The telemetry-plane twin of `fleet_10k`: identical plan plus
    // virtual-time sampling at the default 1 s interval. The overhead
    // gate in perf CI holds this entry within 5% of the plain run
    // (same-run comparison, so machine noise cancels out).
    g.bench_function("fleet_10k_telemetry", |b| {
        let plan = base_plan(clients).with_telemetry(TelemetryConfig::default());
        b.iter(|| {
            let out = fleet_run(&plan, &Exec::serial());
            let tel = out.report.telemetry.as_ref().expect("telemetry on");
            assert!(!tel.series.is_empty());
            out.report.released_packets
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
