//! Criterion benchmarks for the packet codecs and trace formats — the
//! per-packet costs every traced/modulated frame pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use packet::{
    EtherHeader, EtherType, IcmpMessage, IpProtocol, Ipv4Header, MacAddr, TcpFlags, TcpHeader,
};
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn full_tcp_frame(payload: &[u8]) -> Vec<u8> {
    let tcp = TcpHeader {
        src_port: 20,
        dst_port: 40000,
        seq: 12345,
        ack: 67890,
        flags: TcpFlags::ACK,
        window: 32768,
        mss: None,
    }
    .emit(payload, SRC, DST);
    let ip = Ipv4Header {
        src: SRC,
        dst: DST,
        protocol: IpProtocol::Tcp,
        ttl: 64,
        ident: 99,
        total_len: 0,
        more_fragments: false,
        frag_offset: 0,
    }
    .emit(&tcp);
    EtherHeader {
        dst: MacAddr::local(2),
        src: MacAddr::local(1),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip)
}

fn bench_emit_parse(c: &mut Criterion) {
    let payload = vec![0xABu8; 1460];
    let frame = full_tcp_frame(&payload);

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("emit_tcp_frame_1460", |b| {
        b.iter(|| full_tcp_frame(std::hint::black_box(&payload)));
    });
    g.bench_function("parse_tcp_frame_1460", |b| {
        b.iter(|| {
            let (eh, l3) = EtherHeader::parse(std::hint::black_box(&frame)).unwrap();
            assert_eq!(eh.ethertype, EtherType::Ipv4);
            let (ih, l4) = Ipv4Header::parse(l3).unwrap();
            let (th, body) = TcpHeader::parse(l4, ih.src, ih.dst).unwrap();
            assert_eq!(th.dst_port, 40000);
            assert_eq!(body.len(), 1460);
        });
    });
    g.bench_function("icmp_echo_round", |b| {
        let msg = IcmpMessage::Echo {
            ident: 7,
            seq: 3,
            payload: vec![0u8; 500],
        };
        b.iter(|| {
            let wire = std::hint::black_box(&msg).emit();
            IcmpMessage::parse(&wire).unwrap()
        });
    });
    g.finish();
}

fn bench_trace_format(c: &mut Criterion) {
    use tracekit::{Dir, PacketRecord, ProtoInfo, Trace, TraceRecord};
    let mut trace = Trace::new("thinkpad", "porter", 1);
    for i in 0..10_000u64 {
        trace.records.push(TraceRecord::Packet(PacketRecord {
            timestamp_ns: i * 1000,
            dir: if i % 2 == 0 { Dir::Out } else { Dir::In },
            wire_len: 542,
            proto: ProtoInfo::IcmpEchoReply {
                ident: 7,
                seq: (i % 65536) as u16,
                payload_len: 500,
                rtt_ns: 5_000_000,
            },
        }));
    }
    let encoded = tracekit::format::encode_trace(&trace);

    let mut g = c.benchmark_group("trace_format");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("encode_10k_records", |b| {
        b.iter(|| tracekit::format::encode_trace(std::hint::black_box(&trace)));
    });
    g.bench_function("decode_10k_records", |b| {
        b.iter(|| tracekit::format::decode_trace(std::hint::black_box(&encoded)).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_emit_parse, bench_trace_format);
criterion_main!(benches);
