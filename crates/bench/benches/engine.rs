//! Criterion benchmarks for the discrete-event engine: raw event
//! throughput and a two-host TCP transfer including the full stack.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::{Context, EventKind, LinkParams, Node, SimDuration, SimTime, Simulator};

/// Node that reschedules itself `remaining` times.
struct SelfTimer {
    remaining: u64,
}

impl Node for SelfTimer {
    fn on_event(&mut self, _ev: EventKind, ctx: &mut Context<'_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDuration::from_micros(10), 0);
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let events = 100_000u64;
    g.throughput(Throughput::Elements(events));
    g.bench_function("timer_events_100k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let n = sim.add_node(Box::new(SelfTimer { remaining: events }));
            sim.schedule_event(SimTime::ZERO, n, EventKind::Timer { token: 0 });
            sim.run(events + 10);
            assert!(sim.events_processed() >= events);
        });
    });
    g.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;
    use std::net::Ipv4Addr;
    use workloads::{FtpClient, FtpDirection, FtpServer};

    let mut g = c.benchmark_group("engine");
    let size = 1_000_000usize;
    g.throughput(Throughput::Bytes(size as u64));
    g.sample_size(20);
    g.bench_function("tcp_bulk_1mb_full_stack", |b| {
        b.iter(|| {
            let ip_c = Ipv4Addr::new(10, 0, 0, 1);
            let ip_s = Ipv4Addr::new(10, 0, 0, 2);
            let mut ch = Host::new(
                HostConfig::new("c", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
            );
            let app = ch.add_app(Box::new(FtpClient::new(ip_s, FtpDirection::Send, size)));
            let mut sh = Host::new(
                HostConfig::new("s", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
            );
            sh.add_app(Box::new(FtpServer::new()));
            let mut sim = Simulator::new(7);
            let nc = sim.add_node(Box::new(ch));
            let ns = sim.add_node(Box::new(sh));
            sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
            start_host(&mut sim, ns, SimTime::ZERO);
            start_host(&mut sim, nc, SimTime::from_millis(1));
            sim.run_until(SimTime::from_secs(60));
            assert!(sim.node::<Host>(nc).app::<FtpClient>(app).is_done());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_tcp_transfer);
criterion_main!(benches);
