//! **Figures 2–5 — Scenario characterization.**
//!
//! For each scenario (Porter, Flagstaff, Wean, Chatterbox): collect the
//! paper's four trials of ping traces, distill each, and render the four
//! panels — observed signal level, derived latency, bandwidth, and loss
//! rate — as per-checkpoint ranges (or histograms for the stationary
//! Chatterbox).
//!
//! All collection cells (scenario × trial) run as one `TrialPlan` on a
//! worker pool (`--jobs N`, `--serial`); figures merge trials in trial
//! order, so the output is byte-identical at any worker count.
//!
//! Usage: `fig2to5_scenarios [porter|flagstaff|wean|chatterbox|all] [--jobs N|--serial]`

use bench::{exec_from_args, maybe_trim, positional_arg, trials};
use emu::figures::figure_from_collected;
use emu::report::{plan_metrics_text, scenario_figure_text};
use emu::{RunConfig, TrialPlan};
use wavelan::Scenario;

fn main() {
    let arg = positional_arg().unwrap_or_else(|| "all".into());
    let scenarios: Vec<Scenario> = if arg == "all" {
        vec![
            Scenario::porter(),
            Scenario::flagstaff(),
            Scenario::wean(),
            Scenario::chatterbox(),
        ]
    } else {
        vec![Scenario::by_name(&arg).unwrap_or_else(|| {
            eprintln!("unknown scenario '{arg}' (porter|flagstaff|wean|chatterbox|all)");
            std::process::exit(2);
        })]
    };
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    let scenarios: Vec<Scenario> = scenarios.into_iter().map(maybe_trim).collect();

    let mut plan = TrialPlan::new();
    for sc in &scenarios {
        plan.push_collection(sc, n, &cfg);
    }
    let results = plan.run(&exec);

    let figure_no = |name: &str| match name {
        "porter" => 2,
        "flagstaff" => 3,
        "wean" => 4,
        _ => 5,
    };
    for sc in &scenarios {
        println!(
            "\n################ Figure {}: {} traces ################",
            figure_no(sc.name),
            sc.name
        );
        let fig = figure_from_collected(sc, n, &results.collected(sc.name));
        print!("{}", scenario_figure_text(&fig));
    }
    eprint!("{}", plan_metrics_text(&results.metrics));
}
