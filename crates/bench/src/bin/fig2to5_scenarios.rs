//! **Figures 2–5 — Scenario characterization.**
//!
//! For each scenario (Porter, Flagstaff, Wean, Chatterbox): collect the
//! paper's four trials of ping traces, distill each, and render the four
//! panels — observed signal level, derived latency, bandwidth, and loss
//! rate — as per-checkpoint ranges (or histograms for the stationary
//! Chatterbox).
//!
//! Usage: `fig2to5_scenarios [porter|flagstaff|wean|chatterbox|all]`

use bench::{maybe_trim, trials};
use emu::report::scenario_figure_text;
use emu::{scenario_figure, RunConfig};
use wavelan::Scenario;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let scenarios: Vec<Scenario> = if arg == "all" {
        vec![
            Scenario::porter(),
            Scenario::flagstaff(),
            Scenario::wean(),
            Scenario::chatterbox(),
        ]
    } else {
        vec![Scenario::by_name(&arg).unwrap_or_else(|| {
            eprintln!("unknown scenario '{arg}' (porter|flagstaff|wean|chatterbox|all)");
            std::process::exit(2);
        })]
    };
    let n = trials();
    let cfg = RunConfig::default();
    let figure_no = |name: &str| match name {
        "porter" => 2,
        "flagstaff" => 3,
        "wean" => 4,
        _ => 5,
    };
    for sc in scenarios {
        let sc = maybe_trim(sc);
        println!(
            "\n################ Figure {}: {} traces ################",
            figure_no(sc.name),
            sc.name
        );
        let fig = scenario_figure(&sc, n, &cfg);
        print!("{}", scenario_figure_text(&fig));
    }
}
