//! **Ablation: the symmetry assumption vs synchronized clocks (§5.3/§6).**
//!
//! Flagstaff is the scenario where the paper's round-trip symmetry
//! assumption visibly fails: real FTP send and recv differ by >20 s, and
//! standard modulation can only reproduce their mean. The paper's
//! proposed fix — synchronized clocks enabling one-way measurement — is
//! implementable in simulation (both hosts share the global clock).
//!
//! This experiment compares, on Flagstaff FTP send and recv:
//!
//! * live (real) times;
//! * standard modulation (round-trip distillation, symmetric);
//! * asymmetric modulation (two-sided collection, one-way distillation,
//!   per-direction replay traces).
//!
//! Live cells and per-trial (collect-two-sided → distill both ways →
//! four modulated runs) cells run as one `TrialPlan` (`--jobs N`,
//! `--serial`).

use bench::{exec_from_args, trials};
use distill::{distill_asymmetric, distill_with_report, DistillConfig};
use emu::report::plan_metrics_text;
use emu::{
    collect_trace_two_sided, modulated_run, modulated_run_asymmetric, Benchmark, CellKind,
    RunConfig, TrialCell, TrialPlan,
};
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::{Checkpoint, Scenario};

/// A stationary channel with Flagstaff-like asymmetry held steady, so
/// the whole benchmark (not just its first minute) sees the asymmetric
/// conditions — isolating the symmetry assumption from time variation.
fn steady_asymmetric() -> Scenario {
    let mut sc = Scenario::flagstaff();
    sc.duration = SimDuration::from_secs(240);
    sc.stationary = true;
    sc.checkpoints = vec![
        Checkpoint {
            label: "s",
            signal: (6.0, 9.0),
            latency_ms: (1.5, 4.0),
            bw_kbps: (1450.0, 1650.0),
            loss: (0.015, 0.025),
        };
        2
    ];
    sc.loss_asym_up = 1.7; // uplink 1.7×, downlink 0.3×
    sc
}

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    let sc = steady_asymmetric();
    println!(
        "=== Ablation: symmetry assumption vs synchronized clocks (steady asymmetric channel, FTP, {n} trials) ===\n"
    );

    let mut plan = TrialPlan::new();
    for trial in 1..=n {
        for bench in [Benchmark::FtpSend, Benchmark::FtpRecv] {
            plan.push(TrialCell {
                label: format!("live/{}#{trial}", bench.name()),
                trial,
                cfg,
                kind: CellKind::Live {
                    scenario: sc.clone(),
                    benchmark: bench,
                },
            });
        }
        // One cell per trial covers the shared two-sided collection and
        // all four modulated runs derived from it: [sym send, sym recv,
        // asym send, asym recv].
        let sc_cell = sc.clone();
        plan.push(TrialCell {
            label: format!("two-sided#{trial}"),
            trial,
            cfg,
            kind: CellKind::Custom(Box::new(move |trial, cfg| {
                let (mobile, target) = collect_trace_two_sided(&sc_cell, trial, cfg);
                let round_trip = distill_with_report(&mobile, &DistillConfig::default());
                let one_way = distill_asymmetric(&mobile, &target, &DistillConfig::default());
                vec![
                    modulated_run(&round_trip.replay, trial, Benchmark::FtpSend, cfg),
                    modulated_run(&round_trip.replay, trial, Benchmark::FtpRecv, cfg),
                    modulated_run_asymmetric(
                        &one_way.up,
                        &one_way.down,
                        trial,
                        Benchmark::FtpSend,
                        cfg,
                    ),
                    modulated_run_asymmetric(
                        &one_way.up,
                        &one_way.down,
                        trial,
                        Benchmark::FtpRecv,
                        cfg,
                    ),
                ]
            })),
        });
    }
    let results = plan.run(&exec);

    let mut rows: Vec<(&str, Summary, Summary)> = Vec::new();

    // Live reference.
    let mut live = (Summary::new(), Summary::new());
    for r in results.live_runs(sc.name, Benchmark::FtpSend) {
        if let Some(s) = r.elapsed {
            live.0.add(s);
        }
    }
    for r in results.live_runs(sc.name, Benchmark::FtpRecv) {
        if let Some(s) = r.elapsed {
            live.1.add(s);
        }
    }
    rows.push(("live (real)", live.0, live.1));

    // Symmetric vs asymmetric modulation from the custom cells.
    let mut sym = (Summary::new(), Summary::new());
    let mut asym = (Summary::new(), Summary::new());
    for runs in results.custom_runs("two-sided#") {
        for (slot, r) in runs.iter().enumerate() {
            if let Some(s) = r.elapsed {
                match slot {
                    0 => sym.0.add(s),
                    1 => sym.1.add(s),
                    2 => asym.0.add(s),
                    _ => asym.1.add(s),
                }
            }
        }
    }
    rows.push(("modulated, symmetric (paper)", sym.0, sym.1));
    rows.push(("modulated, one-way (§6 ext.)", asym.0, asym.1));

    println!(
        "{:<30} {:>16} {:>16} {:>14}",
        "configuration", "send (s)", "recv (s)", "send−recv gap"
    );
    for (name, send, recv) in &rows {
        println!(
            "{:<30} {:>9.2} ({:>4.2}) {:>9.2} ({:>4.2}) {:>14.2}",
            name,
            send.mean(),
            send.stddev(),
            recv.mean(),
            recv.stddev(),
            send.mean() - recv.mean()
        );
    }
    println!("\n(the symmetric pipeline collapses the send/recv gap to ~0; the");
    println!(" one-way pipeline should recover the live asymmetry)");
    eprint!("{}", plan_metrics_text(&results.metrics));
}
