//! **Chaos soak** — repeated Porter-walk pipeline iterations under a
//! rotating set of fault plans, gated on the emulation-fidelity
//! self-check.
//!
//! Each iteration runs the full streaming pipeline (collect → distill →
//! modulate, benchmark concurrent) under the next plan in the rotation
//! — clean, corruption, truncation, tuple loss, feed stall, clock jump,
//! ring exhaustion, worker kill, and a combination — with a fresh seed,
//! then asserts the run's [`FidelityReport`] still passes the default
//! [`FidelityThresholds`]: graceful degradation means *bounded* error,
//! not a free pass. Any violation fails the soak (exit 1).
//!
//! ```text
//! soak [--iterations N] [--duration-secs S] [--seed BASE] [--fault-out FILE]
//! ```
//!
//! `--fault-out` appends one JSONL line per injected fault, tagged with
//! the iteration and plan name, for CI artifact upload.
//!
//! [`FidelityReport`]: obs::FidelityReport

use distill::DistillConfig;
use emu::{chaos_live_run, Benchmark, RunConfig};
use faultkit::FaultPlan;
use netsim::SimDuration;
use obs::FidelityThresholds;
use std::fmt::Write as _;
use wavelan::Scenario;

/// The rotation: every fault type alone, plus a clean control and a
/// combined plan.
fn rotation() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::new()),
        (
            "corrupt",
            FaultPlan::new().corrupt_chunk(2_048).corrupt_chunk(8_192),
        ),
        ("truncate", FaultPlan::new().truncate_trace(10.0)),
        ("drop", FaultPlan::new().drop_tuples(2..5)),
        ("stall", FaultPlan::new().stall_feed(12_000)),
        ("clock-jump", FaultPlan::new().clock_jump(750)),
        ("oom", FaultPlan::new().oom_ring(256)),
        ("kill", FaultPlan::new().kill_worker(0, 300)),
        (
            "combo",
            FaultPlan::new()
                .corrupt_chunk(4_096)
                .truncate_trace(5.0)
                .stall_feed(8_000)
                .oom_ring(512),
        ),
    ]
}

fn usage() -> ! {
    eprintln!("usage: soak [--iterations N] [--duration-secs S] [--seed BASE] [--fault-out FILE]");
    std::process::exit(2);
}

fn main() {
    let mut iterations = 10u32;
    let mut duration_secs = 30u64;
    let mut base_seed = 1u64;
    let mut fault_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--iterations" => iterations = value().parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => duration_secs = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => base_seed = value().parse().unwrap_or_else(|_| usage()),
            "--fault-out" => fault_out = Some(value()),
            _ => usage(),
        }
    }

    let mut sc = Scenario::porter();
    sc.duration = SimDuration::from_secs(duration_secs);
    let dcfg = DistillConfig::default();
    let cfg = RunConfig::default();
    let thresholds = FidelityThresholds::default();
    let plans = rotation();

    println!(
        "chaos soak: {iterations} iteration(s) of '{}' ({duration_secs}s walk), \
         {}-plan rotation, base seed {base_seed}",
        sc.name,
        plans.len()
    );

    let mut fault_log = String::new();
    let mut violations = 0u32;
    for i in 0..iterations {
        let (name, plan) = &plans[i as usize % plans.len()];
        let seed = base_seed + u64::from(i);
        let out = chaos_live_run(&sc, i + 1, Benchmark::Web, &dcfg, &cfg, seed, plan, 0);

        for ev in &out.faults {
            let ev_json = serde_json::to_string(ev).expect("fault event serializes");
            let _ = writeln!(
                fault_log,
                "{{\"iteration\":{},\"plan\":\"{}\",\"event\":{}}}",
                i + 1,
                name,
                ev_json
            );
        }

        let fidelity = &out.outcome.manifest.fidelity;
        let failures = out.outcome.manifest.check(&thresholds);
        println!(
            "iteration {:>2}/{iterations}  plan {:<10}  seed {:<4}  {:>2} fault(s)  \
             delay p95 {:>6.3} ms  unmod {:>5.1}%  degraded {}  {}",
            i + 1,
            name,
            seed,
            out.counters.injected_total(),
            fidelity.abs_delay_error_p95_ms,
            fidelity.unmodulated_fraction * 100.0,
            if fidelity.degraded { "YES" } else { "no " },
            if failures.is_empty() { "ok" } else { "FAIL" }
        );
        for f in &failures {
            println!("    fidelity regression: {f}");
        }
        violations += failures.len() as u32;
    }

    if let Some(path) = fault_out {
        std::fs::write(&path, &fault_log).unwrap_or_else(|e| {
            eprintln!("soak: write {path}: {e}");
            std::process::exit(1);
        });
        println!("fault events written to {path}");
    }

    if violations > 0 {
        eprintln!("soak: {violations} fidelity violation(s) across {iterations} iteration(s)");
        std::process::exit(1);
    }
    println!("soak: all {iterations} iteration(s) within fidelity thresholds");
}
