//! **Ablation: scheduling-clock granularity (§3.3, §5.4).**
//!
//! The paper blames its Andrew-benchmark under-delays (Wean
//! ScanDir/ReadAll) on the 10 ms NetBSD clock: short NFS status-check
//! messages compute delays below half a tick and are sent immediately.
//! It names two rejected alternatives — a custom hardware clock (ideal)
//! and raising the interrupt frequency (finer ticks).
//!
//! This sweep runs the modulated Andrew benchmark with 10 ms / 1 ms /
//! ideal clocks against the same distilled Wean trace, isolating exactly
//! how much accuracy the cheap clock costs.

use bench::trials;
use emu::{collect_and_distill, live_run, modulated_run, Benchmark, RunConfig};
use modulate::TickClock;
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::Scenario;
use workloads::Phase;

fn main() {
    let n = trials();
    let base = RunConfig::default();
    let sc = Scenario::wean();
    println!("=== Ablation: modulation scheduling granularity (Wean, Andrew benchmark, {n} trials) ===\n");

    // Live reference.
    let mut live_total = Summary::new();
    let mut live_phases = vec![Summary::new(); 5];
    for t in 1..=n {
        let r = live_run(&sc, t, Benchmark::Andrew, &base);
        if let Some(secs) = r.elapsed {
            live_total.add(secs);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            if let Some(&(_, s)) = r.phases.iter().find(|&&(ph, _)| ph == *p) {
                live_phases[i].add(s);
            }
        }
    }

    let clocks = [
        ("10 ms (NetBSD)", TickClock::netbsd()),
        ("1 ms", TickClock::with_resolution(SimDuration::from_millis(1))),
        ("ideal", TickClock::ideal()),
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "clock", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total"
    );
    let row = |name: &str, phases: &[Summary], total: &Summary| {
        print!("{name:<16}");
        for p in phases {
            print!(" {:>12}", format!("{:.2}", p.mean()));
        }
        println!(" {:>12}", format!("{:.2}", total.mean()));
    };
    row("live (real)", &live_phases, &live_total);

    for (name, clock) in clocks {
        let mut total = Summary::new();
        let mut phases = vec![Summary::new(); 5];
        for t in 1..=n {
            let report = collect_and_distill(&sc, t, &base);
            let mut cfg = base;
            cfg.clock = clock;
            let r = modulated_run(&report.replay, t, Benchmark::Andrew, &cfg);
            if let Some(secs) = r.elapsed {
                total.add(secs);
            }
            for (i, p) in Phase::ALL.iter().enumerate() {
                if let Some(&(_, s)) = r.phases.iter().find(|&&(ph, _)| ph == *p) {
                    phases[i].add(s);
                }
            }
        }
        row(name, &phases, &total);
    }
    println!("\n(the paper predicts the 10 ms clock under-delays the status-check");
    println!(" phases — ScanDir and ReadAll — relative to finer clocks)");
}
