//! **Ablation: scheduling-clock granularity (§3.3, §5.4).**
//!
//! The paper blames its Andrew-benchmark under-delays (Wean
//! ScanDir/ReadAll) on the 10 ms NetBSD clock: short NFS status-check
//! messages compute delays below half a tick and are sent immediately.
//! It names two rejected alternatives — a custom hardware clock (ideal)
//! and raising the interrupt frequency (finer ticks).
//!
//! This sweep runs the modulated Andrew benchmark with 10 ms / 1 ms /
//! ideal clocks against the same distilled Wean trace, isolating exactly
//! how much accuracy the cheap clock costs. All (clock, trial) cells
//! plus the live reference run as one `TrialPlan` (`--jobs N`,
//! `--serial`).

use bench::{exec_from_args, trials};
use emu::report::plan_metrics_text;
use emu::{Benchmark, CellKind, CellOutput, RunConfig, TrialCell, TrialPlan};
use modulate::TickClock;
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::Scenario;
use workloads::Phase;

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let base = RunConfig::default();
    let sc = Scenario::wean();
    println!("=== Ablation: modulation scheduling granularity (Wean, Andrew benchmark, {n} trials) ===\n");

    let clocks = [
        ("10 ms (NetBSD)", "10ms", TickClock::netbsd()),
        (
            "1 ms",
            "1ms",
            TickClock::with_resolution(SimDuration::from_millis(1)),
        ),
        ("ideal", "ideal", TickClock::ideal()),
    ];

    let mut plan = TrialPlan::new();
    for trial in 1..=n {
        plan.push(TrialCell {
            label: format!("live#{trial}"),
            trial,
            cfg: base,
            kind: CellKind::Live {
                scenario: sc.clone(),
                benchmark: Benchmark::Andrew,
            },
        });
    }
    for (_, key, clock) in clocks {
        let mut cfg = base;
        cfg.clock = clock;
        for trial in 1..=n {
            plan.push(TrialCell {
                label: format!("clock/{key}#{trial}"),
                trial,
                cfg,
                kind: CellKind::Modulated {
                    scenario: sc.clone(),
                    benchmark: Benchmark::Andrew,
                    distill: Default::default(),
                },
            });
        }
    }
    let results = plan.run(&exec);

    // Accumulate (phases, total) summaries from a list of run results.
    let summarize = |runs: &[&emu::RunResult]| {
        let mut total = Summary::new();
        let mut phases = vec![Summary::new(); 5];
        for r in runs {
            if let Some(secs) = r.elapsed {
                total.add(secs);
            }
            for (i, p) in Phase::ALL.iter().enumerate() {
                if let Some(&(_, s)) = r.phases.iter().find(|&&(ph, _)| ph == *p) {
                    phases[i].add(s);
                }
            }
        }
        (phases, total)
    };

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "clock", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "Total"
    );
    let row = |name: &str, phases: &[Summary], total: &Summary| {
        print!("{name:<16}");
        for p in phases {
            print!(" {:>12}", format!("{:.2}", p.mean()));
        }
        println!(" {:>12}", format!("{:.2}", total.mean()));
    };

    let live = results.live_runs(sc.name, Benchmark::Andrew);
    let (phases, total) = summarize(&live);
    row("live (real)", &phases, &total);

    for (name, key, _) in clocks {
        let runs: Vec<&emu::RunResult> = results
            .labeled(&format!("clock/{key}#"))
            .into_iter()
            .filter_map(|(_, o)| match o {
                CellOutput::RunWithReport(r, _) => Some(r),
                _ => None,
            })
            .collect();
        let (phases, total) = summarize(&runs);
        row(name, &phases, &total);
    }
    println!("\n(the paper predicts the 10 ms clock under-delays the status-check");
    println!(" phases — ScanDir and ReadAll — relative to finer clocks)");
    eprint!("{}", plan_metrics_text(&results.metrics));
}
