//! **Figure 1 — Effect of Delay Compensation.**
//!
//! Replays a synthetic trace whose performance is close to a WaveLAN
//! device and runs FTP transfers of varying sizes, both directions:
//!
//! * Store (outbound) — unaffected by compensation;
//! * Fetch, uncompensated — slower than Store (the asymmetric-placement
//!   artifact);
//! * Fetch, compensated — should move close to Store.
//!
//! A second sweep with a much slower synthetic network confirms the
//! compensation term depends only on the modulating testbed (§3.3).

use distill::synthetic::{constant, NetworkParams};
use emu::{build_ethernet, measure_compensation, Hardware, RunConfig, SERVER_IP};
use modulate::{Modulator, TickClock};
use netsim::SimDuration;
use tracekit::ReplayTrace;
use workloads::{FtpClient, FtpDirection, FtpServer};

/// One FTP transfer over the modulated Ethernet; returns elapsed seconds.
fn ftp(replay: &ReplayTrace, send: bool, size: usize, comp: Option<f64>, seed: u64) -> f64 {
    let dir = if send {
        FtpDirection::Send
    } else {
        FtpDirection::Recv
    };
    let (mut tb, app) = build_ethernet(seed, Hardware::default(), |laptop, server| {
        let mut m = Modulator::from_replay(replay.clone()).with_clock(TickClock::netbsd());
        if let Some(vb) = comp {
            m = m.with_compensation(vb);
        }
        laptop.set_shim(Box::new(m));
        server.add_app(Box::new(FtpServer::new()));
        laptop.add_app(Box::new(FtpClient::new(SERVER_IP, dir, size)))
    });
    tb.start();
    tb.sim.run_until(netsim::SimTime::from_secs(3600));
    let c: &workloads::FtpClient = tb.laptop_host().app(app);
    c.elapsed().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN)
}

fn sweep(name: &str, params: NetworkParams, comp_vb: f64, sizes: &[usize]) {
    let replay = constant(name, params, SimDuration::from_secs(3600));
    println!(
        "\n--- {name}: F={} Vb={:.0}ns/B Vr={:.0}ns/B L={:.0}% ; compensation Vb = {comp_vb:.0} ns/B ---",
        replay.tuples[0].latency(),
        params.vb_ns_per_byte,
        params.vr_ns_per_byte,
        params.loss * 100.0
    );
    println!(
        "{:>10}  {:>12}  {:>18}  {:>16}",
        "size (B)", "store (s)", "fetch uncomp (s)", "fetch comp (s)"
    );
    for (i, &size) in sizes.iter().enumerate() {
        let seed = 100 + i as u64;
        let store = ftp(&replay, true, size, None, seed);
        let fetch_raw = ftp(&replay, false, size, None, seed + 50);
        let fetch_comp = ftp(&replay, false, size, Some(comp_vb), seed + 90);
        println!("{size:>10}  {store:>12.2}  {fetch_raw:>18.2}  {fetch_comp:>16.2}");
    }
}

fn main() {
    println!("=== Figure 1: Effect of Delay Compensation ===");
    println!("(measuring the modulating network once with ping + distillation)");
    let comp = measure_compensation(&RunConfig::default());
    println!("measured modulating-network mean Vb = {comp:.0} ns/byte");

    let sizes = [250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000];
    sweep(
        "synthetic WaveLAN-like trace",
        NetworkParams::wavelan_like(),
        comp,
        &sizes,
    );

    // Independence check: a much slower emulated network, same
    // compensation term (§3.3: "compensation is independent of the
    // traced network performance").
    let slow_sizes = [100_000, 250_000, 500_000, 1_000_000];
    sweep(
        "synthetic slow-network trace",
        NetworkParams::slow_network(),
        comp,
        &slow_sizes,
    );
}
