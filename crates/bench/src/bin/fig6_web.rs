//! **Figure 6 — Elapsed Times for the World Wide Web Benchmark.**
//!
//! Mean elapsed time of four trials of the Web trace-replay benchmark
//! for each mobile scenario, real (live wireless) vs modulated
//! (collect → distill → replay on the isolated Ethernet), plus the
//! Ethernet reference row.

use bench::{maybe_trim, trials};
use emu::report::{cell, comparison_row, table};
use emu::{compare, ethernet_baseline, measure_compensation, Benchmark, RunConfig};
use wavelan::Scenario;

fn main() {
    let n = trials();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!("=== Figure 6: World Wide Web benchmark ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n");

    let mut rows = Vec::new();
    for sc in Scenario::all() {
        let sc = maybe_trim(sc);
        eprintln!("[fig6] running {} ...", sc.name);
        let c = compare(&sc, Benchmark::Web, n, &cfg);
        rows.push(comparison_row(&c));
    }
    let eth = ethernet_baseline(Benchmark::Web, n, &cfg);
    rows.push(vec!["ethernet".into(), cell(&eth), "—".into(), "—".into()]);
    print!(
        "{}",
        table(
            &["Scenario", "Real (s)", "Modulated (s)", "divergence"],
            &rows
        )
    );
    println!("\n(divergence: |Δmean| in units of σ_real + σ_mod; ✓ = within the paper's criterion)");
}
