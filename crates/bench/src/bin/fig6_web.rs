//! **Figure 6 — Elapsed Times for the World Wide Web Benchmark.**
//!
//! Mean elapsed time of four trials of the Web trace-replay benchmark
//! for each mobile scenario, real (live wireless) vs modulated
//! (collect → distill → replay on the isolated Ethernet), plus the
//! Ethernet reference row.
//!
//! The whole matrix — every (scenario, live/modulated, trial) cell plus
//! the Ethernet baselines — is one `TrialPlan` executed on a worker
//! pool (`--jobs N`, default all cores; `--serial` for the
//! single-threaded reference). The table is byte-identical either way.

use bench::{exec_from_args, maybe_trim, trials};
use emu::report::{cell, comparison_row, plan_metrics_text, table};
use emu::{comparison_from_plan, measure_compensation, Benchmark, RunConfig, TrialPlan};
use wavelan::Scenario;

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!("=== Figure 6: World Wide Web benchmark ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n");

    let scenarios: Vec<Scenario> = Scenario::all().into_iter().map(maybe_trim).collect();
    let mut plan = TrialPlan::new();
    for sc in &scenarios {
        plan.push_comparison(sc, Benchmark::Web, n, &cfg);
    }
    plan.push_ethernet(Benchmark::Web, n, &cfg);
    let results = plan.run(&exec);

    let mut rows = Vec::new();
    for sc in &scenarios {
        let c = comparison_from_plan(&results, sc.name, Benchmark::Web);
        rows.push(comparison_row(&c));
    }
    let eth = results.ethernet_baseline(Benchmark::Web);
    rows.push(vec!["ethernet".into(), cell(&eth), "—".into(), "—".into()]);
    print!(
        "{}",
        table(
            &["Scenario", "Real (s)", "Modulated (s)", "divergence"],
            &rows
        )
    );
    println!(
        "\n(divergence: |Δmean| in units of σ_real + σ_mod; ✓ = within the paper's criterion)"
    );
    eprint!("{}", plan_metrics_text(&results.metrics));
}
