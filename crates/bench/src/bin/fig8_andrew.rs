//! **Figure 8 — Elapsed Times for the Andrew Benchmark Phases.**
//!
//! Per-phase (MakeDir / Copy / ScanDir / ReadAll / Make) and total mean
//! elapsed times over NFS, real vs modulated, for every scenario plus
//! the Ethernet reference row.

use bench::{maybe_trim, trials};
use emu::report::{cell, table};
use emu::{compare, ethernet_run, measure_compensation, Benchmark, RunConfig};
use netsim::stats::Summary;
use wavelan::Scenario;
use workloads::Phase;

fn main() {
    let n = trials();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!(
        "=== Figure 8: Andrew benchmark on NFS ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n"
    );

    let headers = [
        "Scenario", "", "MakeDir (s)", "Copy (s)", "ScanDir (s)", "ReadAll (s)", "Make (s)",
        "Total (s)",
    ];
    let mut rows = Vec::new();
    for sc in Scenario::all() {
        let sc = maybe_trim(sc);
        eprintln!("[fig8] running {} ...", sc.name);
        let c = compare(&sc, Benchmark::Andrew, n, &cfg);
        for (label, pick_real) in [("Real", true), ("Mod.", false)] {
            let mut row = vec![
                if pick_real {
                    sc.name.to_string()
                } else {
                    String::new()
                },
                label.to_string(),
            ];
            for p in Phase::ALL {
                let s = c
                    .phases
                    .iter()
                    .find(|&&(ph, _, _)| ph == p)
                    .map(|(_, r, m)| if pick_real { r } else { m })
                    .cloned()
                    .unwrap_or_default();
                row.push(cell(&s));
            }
            row.push(cell(if pick_real { &c.real } else { &c.modulated }));
            rows.push(row);
        }
    }

    // Ethernet reference row.
    let mut phase_sums: Vec<Summary> = vec![Summary::new(); 5];
    let mut total = Summary::new();
    for t in 1..=n {
        let r = ethernet_run(t, Benchmark::Andrew, &cfg);
        for (i, p) in Phase::ALL.iter().enumerate() {
            if let Some(&(_, secs)) = r.phases.iter().find(|&&(ph, _)| ph == *p) {
                phase_sums[i].add(secs);
            }
        }
        total.add(r.secs());
    }
    let mut row = vec!["ethernet".to_string(), "Real".to_string()];
    for s in &phase_sums {
        row.push(cell(s));
    }
    row.push(cell(&total));
    rows.push(row);

    print!("{}", table(&headers, &rows));
}
