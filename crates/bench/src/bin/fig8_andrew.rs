//! **Figure 8 — Elapsed Times for the Andrew Benchmark Phases.**
//!
//! Per-phase (MakeDir / Copy / ScanDir / ReadAll / Make) and total mean
//! elapsed times over NFS, real vs modulated, for every scenario plus
//! the Ethernet reference row.
//!
//! The full matrix runs as one `TrialPlan` on a worker pool (`--jobs
//! N`, `--serial`); the table is byte-identical at any worker count.

use bench::{exec_from_args, maybe_trim, trials};
use emu::report::{cell, plan_metrics_text, table};
use emu::{comparison_from_plan, measure_compensation, Benchmark, RunConfig, TrialPlan};
use netsim::stats::Summary;
use wavelan::Scenario;
use workloads::Phase;

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!(
        "=== Figure 8: Andrew benchmark on NFS ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n"
    );

    let scenarios: Vec<Scenario> = Scenario::all().into_iter().map(maybe_trim).collect();
    let mut plan = TrialPlan::new();
    for sc in &scenarios {
        plan.push_comparison(sc, Benchmark::Andrew, n, &cfg);
    }
    plan.push_ethernet(Benchmark::Andrew, n, &cfg);
    let results = plan.run(&exec);

    let headers = [
        "Scenario",
        "",
        "MakeDir (s)",
        "Copy (s)",
        "ScanDir (s)",
        "ReadAll (s)",
        "Make (s)",
        "Total (s)",
    ];
    let mut rows = Vec::new();
    for sc in &scenarios {
        let c = comparison_from_plan(&results, sc.name, Benchmark::Andrew);
        for (label, pick_real) in [("Real", true), ("Mod.", false)] {
            let mut row = vec![
                if pick_real {
                    sc.name.to_string()
                } else {
                    String::new()
                },
                label.to_string(),
            ];
            for p in Phase::ALL {
                let s = c
                    .phases
                    .iter()
                    .find(|&&(ph, _, _)| ph == p)
                    .map(|(_, r, m)| if pick_real { r } else { m })
                    .cloned()
                    .unwrap_or_default();
                row.push(cell(&s));
            }
            row.push(cell(if pick_real { &c.real } else { &c.modulated }));
            rows.push(row);
        }
    }

    // Ethernet reference row, phases accumulated in plan (trial) order.
    let mut phase_sums: Vec<Summary> = vec![Summary::new(); 5];
    let mut total = Summary::new();
    for r in results.ethernet_runs(Benchmark::Andrew) {
        for (i, p) in Phase::ALL.iter().enumerate() {
            if let Some(&(_, secs)) = r.phases.iter().find(|&&(ph, _)| ph == *p) {
                phase_sums[i].add(secs);
            }
        }
        total.add(r.secs());
    }
    let mut row = vec!["ethernet".to_string(), "Real".to_string()];
    for s in &phase_sums {
        row.push(cell(s));
    }
    row.push(cell(&total));
    rows.push(row);

    print!("{}", table(&headers, &rows));
    eprint!("{}", plan_metrics_text(&results.metrics));
}
