//! **Figure 7 — Elapsed Times for the FTP Benchmark.**
//!
//! 10 MB disk-to-disk transfers, send and receive reported separately —
//! the benchmark most sensitive to network performance and to the
//! symmetry assumption (§5.3).
//!
//! Both directions of every scenario run as one `TrialPlan` on a worker
//! pool (`--jobs N`, `--serial`); the table is byte-identical at any
//! worker count.

use bench::{exec_from_args, maybe_trim, trials};
use emu::report::{cell, plan_metrics_text, table};
use emu::{comparison_from_plan, measure_compensation, Benchmark, RunConfig, TrialPlan};
use wavelan::Scenario;

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!(
        "=== Figure 7: FTP benchmark, 10 MB ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n"
    );

    const DIRS: [(&str, Benchmark); 2] =
        [("send", Benchmark::FtpSend), ("recv", Benchmark::FtpRecv)];
    let scenarios: Vec<Scenario> = Scenario::all().into_iter().map(maybe_trim).collect();
    let mut plan = TrialPlan::new();
    for sc in &scenarios {
        for (_, bench) in DIRS {
            plan.push_comparison(sc, bench, n, &cfg);
        }
    }
    for (_, bench) in DIRS {
        plan.push_ethernet(bench, n, &cfg);
    }
    let results = plan.run(&exec);

    let mut rows = Vec::new();
    for sc in &scenarios {
        for (dir, bench) in DIRS {
            let c = comparison_from_plan(&results, sc.name, bench);
            rows.push(vec![
                if dir == "send" {
                    sc.name.to_string()
                } else {
                    String::new()
                },
                dir.into(),
                cell(&c.real),
                cell(&c.modulated),
                format!(
                    "{:.2}σ{}",
                    c.sigma_ratio(),
                    if c.within_one_sigma() { " ✓" } else { "" }
                ),
            ]);
        }
    }
    for (dir, bench) in DIRS {
        let eth = results.ethernet_baseline(bench);
        rows.push(vec![
            if dir == "send" {
                "ethernet".into()
            } else {
                String::new()
            },
            dir.into(),
            cell(&eth),
            "—".into(),
            "—".into(),
        ]);
    }
    print!(
        "{}",
        table(
            &["Scenario", "", "Real (s)", "Modulated (s)", "divergence"],
            &rows
        )
    );
    println!(
        "\n(divergence: |Δmean| in units of σ_real + σ_mod; ✓ = within the paper's criterion)"
    );
    eprint!("{}", plan_metrics_text(&results.metrics));
}
