//! **Figure 7 — Elapsed Times for the FTP Benchmark.**
//!
//! 10 MB disk-to-disk transfers, send and receive reported separately —
//! the benchmark most sensitive to network performance and to the
//! symmetry assumption (§5.3).

use bench::{maybe_trim, trials};
use emu::report::{cell, table};
use emu::{compare, ethernet_baseline, measure_compensation, Benchmark, RunConfig};
use wavelan::Scenario;

fn main() {
    let n = trials();
    let cfg = RunConfig::default();
    // Compensation is measured (the paper's procedure) but NOT applied:
    // unlike the paper's NetBSD implementation, our modulation testbed
    // shows no inbound/outbound asymmetry to correct (see fig1 and
    // EXPERIMENTS.md), so the accurate configuration is comp = 0.
    let comp = measure_compensation(&cfg);
    println!(
        "=== Figure 7: FTP benchmark, 10 MB ({n} trials/cell, compensation Vb = {comp:.0} ns/B) ===\n"
    );

    let mut rows = Vec::new();
    for sc in Scenario::all() {
        let sc = maybe_trim(sc);
        for (dir, bench) in [("send", Benchmark::FtpSend), ("recv", Benchmark::FtpRecv)] {
            eprintln!("[fig7] running {} {dir} ...", sc.name);
            let c = compare(&sc, bench, n, &cfg);
            rows.push(vec![
                if dir == "send" {
                    sc.name.to_string()
                } else {
                    String::new()
                },
                dir.into(),
                cell(&c.real),
                cell(&c.modulated),
                format!(
                    "{:.2}σ{}",
                    c.sigma_ratio(),
                    if c.within_one_sigma() { " ✓" } else { "" }
                ),
            ]);
        }
    }
    for (dir, bench) in [("send", Benchmark::FtpSend), ("recv", Benchmark::FtpRecv)] {
        let eth = ethernet_baseline(bench, n, &cfg);
        rows.push(vec![
            if dir == "send" {
                "ethernet".into()
            } else {
                String::new()
            },
            dir.into(),
            cell(&eth),
            "—".into(),
            "—".into(),
        ]);
    }
    print!(
        "{}",
        table(
            &["Scenario", "", "Real (s)", "Modulated (s)", "divergence"],
            &rows
        )
    );
    println!("\n(divergence: |Δmean| in units of σ_real + σ_mod; ✓ = within the paper's criterion)");
}
