//! **Ablation: distillation window width (§3.2.2).**
//!
//! The paper chose a five-second sliding window to "balance the desire
//! to discount outlying estimates with the need to be reactive to true
//! change". This sweep distills the same Wean traces with 1 s / 5 s /
//! 15 s windows and compares the modulated FTP fetch time against the
//! live reference: too narrow tracks probe noise, too wide smears the
//! elevator outage.

use bench::trials;
use distill::{distill_with_report, DistillConfig, WindowConfig};
use emu::{collect_trace, live_run, modulated_run, Benchmark, RunConfig};
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::Scenario;

fn main() {
    let n = trials();
    let cfg = RunConfig::default();
    let sc = Scenario::wean();
    println!("=== Ablation: distillation window width (Wean, FTP fetch, {n} trials) ===\n");

    let mut live = Summary::new();
    for t in 1..=n {
        if let Some(secs) = live_run(&sc, t, Benchmark::FtpRecv, &cfg).elapsed {
            live.add(secs);
        }
    }
    println!("live reference: {:.2} s (σ {:.2})\n", live.mean(), live.stddev());

    println!(
        "{:>8}  {:>14}  {:>10}  {:>12}",
        "window", "modulated (s)", "tuples", "worst loss"
    );
    for width_s in [1u64, 5, 15] {
        let mut modulated = Summary::new();
        let mut tuples = 0usize;
        let mut worst = 0.0f64;
        for t in 1..=n {
            let trace = collect_trace(&sc, t, &cfg);
            let dcfg = DistillConfig {
                window: WindowConfig {
                    width: SimDuration::from_secs(width_s),
                    step: SimDuration::from_secs(1),
                },
            };
            let report = distill_with_report(&trace, &dcfg);
            tuples = report.replay.tuples.len();
            worst = worst.max(
                report
                    .replay
                    .tuples
                    .iter()
                    .map(|q| q.loss)
                    .fold(0.0, f64::max),
            );
            if let Some(secs) =
                modulated_run(&report.replay, t, Benchmark::FtpRecv, &cfg).elapsed
            {
                modulated.add(secs);
            }
        }
        println!(
            "{:>7}s  {:>7.2} ({:>4.2})  {:>10}  {:>11.0}%",
            width_s,
            modulated.mean(),
            modulated.stddev(),
            tuples,
            worst * 100.0
        );
    }
    println!("\n(5 s is the paper's choice; 1 s chases probe noise, 15 s smears");
    println!(" the elevator outage across half a minute of replay)");
}
