//! **Ablation: distillation window width (§3.2.2).**
//!
//! The paper chose a five-second sliding window to "balance the desire
//! to discount outlying estimates with the need to be reactive to true
//! change". This sweep distills the same Wean traces with 1 s / 5 s /
//! 15 s windows and compares the modulated FTP fetch time against the
//! live reference: too narrow tracks probe noise, too wide smears the
//! elevator outage. All (window, trial) cells run as one `TrialPlan`
//! (`--jobs N`, `--serial`).

use bench::{exec_from_args, trials};
use distill::{DistillConfig, WindowConfig};
use emu::report::plan_metrics_text;
use emu::{Benchmark, CellKind, CellOutput, RunConfig, TrialCell, TrialPlan};
use netsim::stats::Summary;
use netsim::SimDuration;
use wavelan::Scenario;

fn main() {
    let n = trials();
    let exec = exec_from_args();
    let cfg = RunConfig::default();
    let sc = Scenario::wean();
    println!("=== Ablation: distillation window width (Wean, FTP fetch, {n} trials) ===\n");

    const WIDTHS: [u64; 3] = [1, 5, 15];
    let mut plan = TrialPlan::new();
    for trial in 1..=n {
        plan.push(TrialCell {
            label: format!("live#{trial}"),
            trial,
            cfg,
            kind: CellKind::Live {
                scenario: sc.clone(),
                benchmark: Benchmark::FtpRecv,
            },
        });
    }
    for width_s in WIDTHS {
        let dcfg = DistillConfig {
            window: WindowConfig {
                width: SimDuration::from_secs(width_s),
                step: SimDuration::from_secs(1),
            },
            ..DistillConfig::default()
        };
        for trial in 1..=n {
            plan.push(TrialCell {
                label: format!("win/{width_s}s#{trial}"),
                trial,
                cfg,
                kind: CellKind::Modulated {
                    scenario: sc.clone(),
                    benchmark: Benchmark::FtpRecv,
                    distill: dcfg,
                },
            });
        }
    }
    let results = plan.run(&exec);

    let mut live = Summary::new();
    for r in results.live_runs(sc.name, Benchmark::FtpRecv) {
        if let Some(secs) = r.elapsed {
            live.add(secs);
        }
    }
    println!(
        "live reference: {:.2} s (σ {:.2})\n",
        live.mean(),
        live.stddev()
    );

    println!(
        "{:>8}  {:>14}  {:>10}  {:>12}",
        "window", "modulated (s)", "tuples", "worst loss"
    );
    for width_s in WIDTHS {
        let mut modulated = Summary::new();
        let mut tuples = 0usize;
        let mut worst = 0.0f64;
        for (_, o) in results.labeled(&format!("win/{width_s}s#")) {
            if let CellOutput::RunWithReport(r, report) = o {
                tuples = report.replay.tuples.len();
                worst = worst.max(
                    report
                        .replay
                        .tuples
                        .iter()
                        .map(|q| q.loss)
                        .fold(0.0, f64::max),
                );
                if let Some(secs) = r.elapsed {
                    modulated.add(secs);
                }
            }
        }
        println!(
            "{:>7}s  {:>7.2} ({:>4.2})  {:>10}  {:>11.0}%",
            width_s,
            modulated.mean(),
            modulated.stddev(),
            tuples,
            worst * 100.0
        );
    }
    println!("\n(5 s is the paper's choice; 1 s chases probe noise, 15 s smears");
    println!(" the elevator outage across half a minute of replay)");
    eprint!("{}", plan_metrics_text(&results.metrics));
}
