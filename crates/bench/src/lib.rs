//! Shared helpers for the experiment binaries (`src/bin/fig*.rs`), which
//! regenerate every figure and table of the paper's evaluation section.
//! See EXPERIMENTS.md for the recorded outputs.

#![warn(missing_docs)]

/// Number of trials per cell: the paper uses 4; override with the
/// `TRIALS` environment variable (e.g. `TRIALS=1` for a smoke run).
pub fn trials() -> u32 {
    std::env::var("TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// Scenario-duration cap in seconds (0 = paper-length). Override with
/// `SCENARIO_SECS` for quick runs.
pub fn scenario_secs_override() -> Option<u64> {
    std::env::var("SCENARIO_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Apply the override to a scenario.
pub fn maybe_trim(mut sc: wavelan::Scenario) -> wavelan::Scenario {
    if let Some(secs) = scenario_secs_override() {
        sc.duration = netsim::SimDuration::from_secs(secs);
    }
    sc
}
