//! Shared helpers for the experiment binaries (`src/bin/fig*.rs`), which
//! regenerate every figure and table of the paper's evaluation section.
//! See EXPERIMENTS.md for the recorded outputs.

#![warn(missing_docs)]

/// Number of trials per cell: the paper uses 4; override with the
/// `TRIALS` environment variable (e.g. `TRIALS=1` for a smoke run).
pub fn trials() -> u32 {
    std::env::var("TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// Scenario-duration cap in seconds (0 = paper-length). Override with
/// `SCENARIO_SECS` for quick runs.
pub fn scenario_secs_override() -> Option<u64> {
    std::env::var("SCENARIO_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Apply the override to a scenario.
pub fn maybe_trim(mut sc: wavelan::Scenario) -> wavelan::Scenario {
    if let Some(secs) = scenario_secs_override() {
        sc.duration = netsim::SimDuration::from_secs(secs);
    }
    sc
}

/// Execution for the experiment binaries: parallel across the
/// machine's cores by default (or `EMU_JOBS`), `--jobs N` to pick a
/// pool size, `--serial` as the single-threaded escape hatch. Summary
/// tables are byte-identical whichever is chosen; progress and metrics
/// go to stderr.
pub fn exec_from_args() -> emu::Exec {
    let jobs = |n: usize| {
        if n == 0 {
            eprintln!("--jobs needs a worker count of at least 1 (use --serial for one worker)");
            std::process::exit(2);
        }
        emu::Exec::with_workers(n).with_progress(true)
    };
    let mut exec = emu::Exec::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serial" => exec = emu::Exec::serial(),
            "--jobs" => {
                let n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count");
                    std::process::exit(2);
                });
                exec = jobs(n);
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    let n = v.parse().unwrap_or_else(|_| {
                        eprintln!("--jobs needs a worker count, got '{v}'");
                        std::process::exit(2);
                    });
                    exec = jobs(n);
                }
            }
        }
    }
    exec
}

/// First non-flag command-line argument, for binaries that also take a
/// positional argument (e.g. a scenario name).
pub fn positional_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            args.next();
        } else if !arg.starts_with("--") {
            return Some(arg);
        }
    }
    None
}
