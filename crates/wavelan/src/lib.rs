//! # wavelan — the wireless substrate
//!
//! Models the paper's physical testbed: an AT&T WaveLAN radio (2 Mb/s
//! nominal, shared medium), the campus WavePoint infrastructure, physical
//! motion along the four evaluation scenarios, and SynRGen-like
//! interfering traffic.
//!
//! The central abstraction is the [`WirelessChannel`] simulation node: it
//! relays frames between the mobile host and the wired side while
//! applying the time-varying [`LinkConditions`] of a [`ChannelModel`] —
//! shared-medium serialization (both directions contend for the same air
//! time), one-way latency, probabilistic loss, and cross-traffic
//! contention. The channel also drives the signal meter that the trace
//! collector's device records sample.
//!
//! [`Scenario`] holds the checkpoint tables reproducing Figures 2–5.
//! For physically-grounded experiments, [`PhysicalModel`] instead derives
//! conditions from a [`MobilityPath`] walked through [`WavePoint`] base
//! stations via log-distance path loss, shadowing, and handoffs.

#![warn(missing_docs)]

pub mod channel;
pub mod crosstraffic;
pub mod errant;
pub mod leo;
pub mod mobility;
pub mod model;
pub mod registry;
pub mod scenario;
pub mod signal;
pub mod spec;
pub mod wavepoint;

pub use channel::{ChannelStats, WirelessChannel, MOBILE_PORT, WIRED_PORT};
pub use crosstraffic::{CrossTraffic, CrossTrafficCfg};
pub use errant::{ErrantModel, ErrantProfile, Rat};
pub use leo::{LeoConfig, LeoModel};
pub use mobility::{MobilityPath, Position, WalkBuilder};
pub use model::{ChannelModel, Checkpoint, ConstantModel, LinkConditions, PiecewiseModel};
pub use registry::{load_pack, ModelParams, ModelSpec, PackEntry, Registry, ScenarioPack};
pub use scenario::Scenario;
pub use signal::SignalInfo;
pub use spec::{CheckpointSpec, CrossSpec, ScenarioSpec};
pub use wavepoint::{HandoffConfig, PhysicalModel, Propagation, SignalResponse, WavePoint};
