//! Mobility paths: the experimenter's physical traversal, as positions
//! over time. The scenario checkpoints of Figures 2–4 are empirical; this
//! module (with [`crate::wavepoint`]) provides the *physical* alternative
//! — walks through a floor plan with speeds and pauses, from which signal
//! (and hence channel conditions) are derived by propagation modeling.

use netsim::{SimDuration, SimTime};

/// A position in meters on the campus plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// East-west coordinate.
    pub x: f64,
    /// North-south coordinate.
    pub y: f64,
}

impl Position {
    /// Construct a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    fn lerp(&self, other: &Position, t: f64) -> Position {
        Position {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// A timed waypoint.
#[derive(Debug, Clone, Copy)]
struct TimedPoint {
    at: SimTime,
    pos: Position,
}

/// A piecewise-linear walk: positions interpolated between timed
/// waypoints; stationary before the first and after the last.
#[derive(Debug, Clone)]
pub struct MobilityPath {
    points: Vec<TimedPoint>,
}

/// Builder for walks expressed as segments with speeds and pauses.
#[derive(Debug)]
pub struct WalkBuilder {
    points: Vec<TimedPoint>,
    now: SimTime,
    here: Position,
}

impl WalkBuilder {
    /// Start at `start` at t = 0.
    pub fn start_at(start: Position) -> Self {
        WalkBuilder {
            points: vec![TimedPoint {
                at: SimTime::ZERO,
                pos: start,
            }],
            now: SimTime::ZERO,
            here: start,
        }
    }

    /// Walk to `dest` at `speed_mps` meters per second.
    pub fn walk_to(mut self, dest: Position, speed_mps: f64) -> Self {
        assert!(speed_mps > 0.0, "speed must be positive");
        let d = self.here.distance(&dest);
        self.now += SimDuration::from_secs_f64(d / speed_mps);
        self.here = dest;
        self.points.push(TimedPoint {
            at: self.now,
            pos: dest,
        });
        self
    }

    /// Pause in place (waiting for an elevator, say).
    pub fn pause(mut self, d: SimDuration) -> Self {
        self.now += d;
        self.points.push(TimedPoint {
            at: self.now,
            pos: self.here,
        });
        self
    }

    /// Finish the walk.
    pub fn build(self) -> MobilityPath {
        MobilityPath {
            points: self.points,
        }
    }
}

impl MobilityPath {
    /// A path that never moves.
    pub fn stationary(pos: Position) -> Self {
        MobilityPath {
            points: vec![TimedPoint {
                at: SimTime::ZERO,
                pos,
            }],
        }
    }

    /// Position at time `t`.
    pub fn position_at(&self, t: SimTime) -> Position {
        let pts = &self.points;
        if t <= pts[0].at {
            return pts[0].pos;
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if t <= b.at {
                let span = (b.at - a.at).as_secs_f64();
                if span <= 0.0 {
                    return b.pos;
                }
                let frac = (t - a.at).as_secs_f64() / span;
                return a.pos.lerp(&b.pos, frac);
            }
        }
        pts[pts.len() - 1].pos
    }

    /// Total traversal duration.
    pub fn duration(&self) -> SimDuration {
        self.points[self.points.len() - 1].at - self.points[0].at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_lerp() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn walk_timing_from_speed() {
        // 100 m at 1.25 m/s = 80 s, then a 20 s pause, then 50 m at 1 m/s.
        let path = WalkBuilder::start_at(Position::new(0.0, 0.0))
            .walk_to(Position::new(100.0, 0.0), 1.25)
            .pause(SimDuration::from_secs(20))
            .walk_to(Position::new(100.0, 50.0), 1.0)
            .build();
        assert_eq!(path.duration(), SimDuration::from_secs(150));
        // Halfway through the first leg.
        let p = path.position_at(SimTime::from_secs(40));
        assert!((p.x - 50.0).abs() < 1e-9);
        // During the pause we are at the corner.
        let p = path.position_at(SimTime::from_secs(90));
        assert!((p.x - 100.0).abs() < 1e-9 && p.y.abs() < 1e-9);
        // After the end we stay put.
        let p = path.position_at(SimTime::from_secs(500));
        assert!((p.y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_path() {
        let path = MobilityPath::stationary(Position::new(7.0, 7.0));
        assert_eq!(path.duration(), SimDuration::ZERO);
        let p = path.position_at(SimTime::from_secs(100));
        assert_eq!(p, Position::new(7.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ =
            WalkBuilder::start_at(Position::new(0.0, 0.0)).walk_to(Position::new(1.0, 0.0), 0.0);
    }
}
