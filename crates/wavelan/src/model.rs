//! Time-varying channel models.
//!
//! A [`ChannelModel`] answers: "what are the instantaneous one-way
//! conditions of the wireless hop right now?" Scenario models are built
//! from per-checkpoint target ranges (matching Figures 2–5) interpolated
//! over the traversal, with per-trial randomness so that four trials of
//! one scenario differ the way the paper's four trials do.

use crate::signal::SignalInfo;
use netsim::{SimDuration, SimRng, SimTime};

/// Instantaneous one-way conditions of the wireless hop.
#[derive(Debug, Clone, Copy)]
pub struct LinkConditions {
    /// One-way fixed latency (propagation + MAC + base-station
    /// processing).
    pub latency: SimDuration,
    /// Instantaneous usable bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way probability of losing a packet.
    pub loss: f64,
    /// What the device reports.
    pub signal: SignalInfo,
}

/// A source of time-varying channel conditions.
///
/// Implementations are identified by their stable [`name`](Self::name)
/// string (the registry's model-name key), never by `TypeId` downcasts
/// — there is deliberately no `Any` supertrait.
pub trait ChannelModel: Send {
    /// Conditions at `now`. May be stochastic (uses `rng`).
    fn sample(&mut self, now: SimTime, rng: &mut SimRng) -> LinkConditions;

    /// Total scenario duration (conditions repeat/flatten past this).
    fn duration(&self) -> SimDuration;

    /// Scenario name for reports.
    fn name(&self) -> &str {
        "channel"
    }

    /// Base-station handoffs performed so far. Nonzero only for models
    /// with explicit station association (e.g. the physical
    /// WavePoint model); interpolated scenario models have no discrete
    /// handoff events.
    fn handoffs(&self) -> u64 {
        0
    }
}

/// A fixed-conditions model (useful for tests and the wired baseline).
#[derive(Debug, Clone)]
pub struct ConstantModel {
    /// The conditions returned for every sample.
    pub conditions: LinkConditions,
    /// Reported duration.
    pub span: SimDuration,
}

impl ConstantModel {
    /// A model that always returns `conditions`.
    pub fn new(conditions: LinkConditions, span: SimDuration) -> Self {
        ConstantModel { conditions, span }
    }

    /// A WaveLAN-like steady channel: 2 ms latency, 1.5 Mb/s, 2% loss.
    pub fn wavelan_typical(span: SimDuration) -> Self {
        ConstantModel::new(
            LinkConditions {
                latency: SimDuration::from_millis(2),
                bandwidth_bps: 1_500_000,
                loss: 0.02,
                signal: SignalInfo::from_level(20.0),
            },
            span,
        )
    }
}

impl ChannelModel for ConstantModel {
    fn sample(&mut self, _now: SimTime, _rng: &mut SimRng) -> LinkConditions {
        self.conditions
    }

    fn duration(&self) -> SimDuration {
        self.span
    }

    fn name(&self) -> &str {
        "constant"
    }
}

/// One checkpoint along a scenario path: target parameter ranges observed
/// there (the vertical bars in Figures 2–4).
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    /// Label, e.g. "x3".
    pub label: &'static str,
    /// Signal level range (WaveLAN units).
    pub signal: (f64, f64),
    /// One-way latency range in milliseconds. Values are sampled
    /// log-uniformly so occasional spikes near `hi` occur.
    pub latency_ms: (f64, f64),
    /// Bandwidth range in kilobits per second.
    pub bw_kbps: (f64, f64),
    /// One-way loss-rate range (0–1).
    pub loss: (f64, f64),
}

/// A piecewise scenario: checkpoints spread evenly across `duration`,
/// linearly interpolated, with per-trial jitter and short-lived latency
/// spikes.
pub struct PiecewiseModel {
    name: &'static str,
    checkpoints: Vec<Checkpoint>,
    duration: SimDuration,
    /// Per-trial multiplicative offsets (drawn once per construction).
    trial_latency_k: f64,
    trial_bw_k: f64,
    trial_loss_k: f64,
    trial_signal_k: f64,
    /// Probability per sample of a latency spike toward the range top.
    spike_p: f64,
    /// Temporal-coherence state: positions in [0,1] within each range,
    /// evolved as a reflected random walk so conditions vary smoothly
    /// (correlation time ≈ `tau`) rather than i.i.d. per packet.
    walk: WalkState,
    /// Correlation time of the random walk.
    tau: SimDuration,
}

/// Reflected-random-walk state shared by the temporally-coherent
/// models (piecewise WaveLAN scenarios and the ERRANT cellular
/// profiles): four positions in `[0, 1]`, one per link parameter,
/// evolved smoothly with correlation time `tau`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalkState {
    pub(crate) last: Option<SimTime>,
    pub(crate) lat_u: f64,
    pub(crate) bw_u: f64,
    pub(crate) loss_u: f64,
    pub(crate) sig_u: f64,
}

impl WalkState {
    pub(crate) fn centered() -> Self {
        WalkState {
            last: None,
            lat_u: 0.5,
            bw_u: 0.5,
            loss_u: 0.5,
            sig_u: 0.5,
        }
    }

    pub(crate) fn advance(&mut self, now: SimTime, tau: SimDuration, rng: &mut SimRng) {
        let dt = match self.last {
            None => {
                self.lat_u = rng.f64();
                self.bw_u = rng.f64();
                self.loss_u = rng.f64();
                self.sig_u = rng.f64();
                self.last = Some(now);
                return;
            }
            Some(last) => now.since(last).as_secs_f64(),
        };
        self.last = Some(now);
        if dt <= 0.0 {
            return;
        }
        // Step size grows with elapsed time; saturates at a full-range
        // re-draw once dt >> tau.
        let sigma = (dt / tau.as_secs_f64()).sqrt().min(1.0) * 0.5;
        let mut step = |u: &mut f64| {
            let mut v = *u + rng.normal(0.0, sigma);
            // Reflect into [0, 1].
            while !(0.0..=1.0).contains(&v) {
                if v < 0.0 {
                    v = -v;
                } else {
                    v = 2.0 - v;
                }
            }
            *u = v;
        };
        step(&mut self.lat_u);
        step(&mut self.bw_u);
        step(&mut self.loss_u);
        step(&mut self.sig_u);
    }
}

impl PiecewiseModel {
    /// Build a trial of a scenario. `trial_rng` supplies the per-trial
    /// variation; two models built with identically-seeded RNGs behave
    /// identically.
    pub fn new(
        name: &'static str,
        checkpoints: Vec<Checkpoint>,
        duration: SimDuration,
        trial_rng: &mut SimRng,
    ) -> Self {
        assert!(checkpoints.len() >= 2, "need at least two checkpoints");
        PiecewiseModel {
            name,
            checkpoints,
            duration,
            trial_latency_k: trial_rng.range_f64(0.85, 1.15),
            trial_bw_k: trial_rng.range_f64(0.92, 1.08),
            trial_loss_k: trial_rng.range_f64(0.88, 1.12),
            trial_signal_k: trial_rng.range_f64(0.9, 1.1),
            spike_p: 0.02,
            walk: WalkState::centered(),
            tau: SimDuration::from_secs(3),
        }
    }

    /// Position along the path in [0, 1].
    fn frac(&self, now: SimTime) -> f64 {
        let d = self.duration.as_nanos().max(1);
        (now.as_nanos() as f64 / d as f64).min(1.0)
    }

    /// Interpolated checkpoint ranges at a position.
    fn ranges_at(&self, frac: f64) -> Checkpoint {
        let n = self.checkpoints.len();
        let pos = frac * (n - 1) as f64;
        let i = (pos.floor() as usize).min(n - 2);
        let t = pos - i as f64;
        let a = self.checkpoints[i];
        let b = self.checkpoints[i + 1];
        let lerp = |x: (f64, f64), y: (f64, f64)| -> (f64, f64) {
            (x.0 + (y.0 - x.0) * t, x.1 + (y.1 - x.1) * t)
        };
        Checkpoint {
            label: a.label,
            signal: lerp(a.signal, b.signal),
            latency_ms: lerp(a.latency_ms, b.latency_ms),
            bw_kbps: lerp(a.bw_kbps, b.bw_kbps),
            loss: lerp(a.loss, b.loss),
        }
    }
}

impl ChannelModel for PiecewiseModel {
    fn sample(&mut self, now: SimTime, rng: &mut SimRng) -> LinkConditions {
        let r = self.ranges_at(self.frac(now));
        self.walk.advance(now, self.tau, rng);

        // Latency: log-scale position within the range (so time spent
        // near the floor dominates, with excursions toward the top), plus
        // occasional short spikes pinned near the range top — the spikes
        // in the paper's latency plots.
        let (l_lo, l_hi) = (r.latency_ms.0.max(0.05), r.latency_ms.1.max(0.06));
        let lat_ms = if rng.chance(self.spike_p) {
            rng.range_f64(0.7 * l_hi, l_hi)
        } else {
            let u = self.walk.lat_u;
            l_lo * (l_hi / l_lo).powf(u * u) // biased toward the low end
        } * self.trial_latency_k;

        let lerp = |(lo, hi): (f64, f64), u: f64| lo + (hi - lo) * u;
        let bw_kbps = lerp(r.bw_kbps, self.walk.bw_u) * self.trial_bw_k;
        let loss = (lerp(r.loss, self.walk.loss_u) * self.trial_loss_k).clamp(0.0, 0.95);
        let sig = lerp(r.signal, self.walk.sig_u) * self.trial_signal_k;

        LinkConditions {
            latency: SimDuration::from_secs_f64(lat_ms / 1e3),
            bandwidth_bps: (bw_kbps * 1000.0).max(1000.0) as u64,
            loss,
            signal: SignalInfo::from_level(sig),
        }
    }

    fn duration(&self) -> SimDuration {
        self.duration
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_point_model() -> PiecewiseModel {
        let mut rng = SimRng::seed_from_u64(1);
        PiecewiseModel::new(
            "test",
            vec![
                Checkpoint {
                    label: "a",
                    signal: (20.0, 20.0),
                    latency_ms: (1.0, 1.0),
                    bw_kbps: (2000.0, 2000.0),
                    loss: (0.0, 0.0),
                },
                Checkpoint {
                    label: "b",
                    signal: (10.0, 10.0),
                    latency_ms: (9.0, 9.0),
                    bw_kbps: (1000.0, 1000.0),
                    loss: (0.5, 0.5),
                },
            ],
            SimDuration::from_secs(100),
            &mut rng,
        )
    }

    #[test]
    fn interpolation_moves_between_checkpoints() {
        let mut m = two_point_model();
        let mut rng = SimRng::seed_from_u64(2);
        let start = m.sample(SimTime::ZERO, &mut rng);
        let end = m.sample(SimTime::from_secs(100), &mut rng);
        assert!(start.signal.level > end.signal.level);
        assert!(start.bandwidth_bps > end.bandwidth_bps);
        assert!(start.loss < end.loss);
        assert!(start.latency < end.latency);
        // Midpoint is between the two.
        let mid = m.sample(SimTime::from_secs(50), &mut rng);
        assert!(mid.signal.level < start.signal.level);
        assert!(mid.signal.level > end.signal.level);
    }

    #[test]
    fn past_duration_clamps() {
        let mut m = two_point_model();
        let mut rng = SimRng::seed_from_u64(2);
        let end = m.sample(SimTime::from_secs(100), &mut rng);
        let past = m.sample(SimTime::from_secs(500), &mut rng);
        assert!((end.loss - past.loss).abs() < 0.2);
    }

    #[test]
    fn trials_differ_but_are_reproducible() {
        let build = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut m = two_point_model();
            m.trial_latency_k = rng.range_f64(0.85, 1.15);
            m
        };
        let a = build(1).trial_latency_k;
        let b = build(1).trial_latency_k;
        let c = build(2).trial_latency_k;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn constant_model_is_constant() {
        let mut m = ConstantModel::wavelan_typical(SimDuration::from_secs(60));
        let mut rng = SimRng::seed_from_u64(3);
        let a = m.sample(SimTime::ZERO, &mut rng);
        let b = m.sample(SimTime::from_secs(30), &mut rng);
        assert_eq!(a.bandwidth_bps, b.bandwidth_bps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(m.name(), "constant");
    }

    #[test]
    fn latency_samples_are_biased_low_with_spikes() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut m = PiecewiseModel::new(
            "spiky",
            vec![
                Checkpoint {
                    label: "a",
                    signal: (20.0, 20.0),
                    latency_ms: (1.5, 100.0),
                    bw_kbps: (1500.0, 1500.0),
                    loss: (0.0, 0.0),
                },
                Checkpoint {
                    label: "b",
                    signal: (20.0, 20.0),
                    latency_ms: (1.5, 100.0),
                    bw_kbps: (1500.0, 1500.0),
                    loss: (0.0, 0.0),
                },
            ],
            SimDuration::from_secs(10),
            &mut rng,
        );
        // Sample along time so the coherent walk explores the range.
        let samples: Vec<f64> = (0..2000)
            .map(|i| {
                m.sample(SimTime::from_millis(5 * i), &mut rng)
                    .latency
                    .as_millis_f64()
            })
            .collect();
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        let max = samples.iter().cloned().fold(0.0, f64::max);
        // Median stays near the floor; spikes reach most of the range top.
        assert!(median < 15.0, "median {median}");
        assert!(max > 60.0, "max {max}");
    }
}
