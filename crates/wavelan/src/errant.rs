//! ERRANT-style cellular channel model: operator/RAT profile packs.
//!
//! ERRANT ("Realistic Emulation of Radio Access Networks") showed that
//! a useful cellular emulation unit is a *profile* — an (operator, RAT)
//! pair carrying distributions of downlink rate, one-way delay and loss
//! measured in the wild — from which each emulated session draws one
//! *realization*. [`ErrantModel`] reproduces that structure on top of
//! this crate's [`ChannelModel`] contract: the per-client trial RNG
//! draws the session medians once at construction (so a 10k-client
//! fleet sees 10k distinct-but-reproducible sessions of the same
//! profile), and a reflected random walk (the same temporal-coherence
//! machinery the WaveLAN scenario models use) varies conditions
//! smoothly around those medians during the run.
//!
//! Cellular links have no station-roaming discontinuities at this
//! abstraction level, so [`handoffs`](ChannelModel::handoffs) stays 0.

use crate::model::{ChannelModel, LinkConditions, WalkState};
use crate::signal::SignalInfo;
use netsim::{SimDuration, SimRng, SimTime};

/// Radio access technology of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rat {
    /// UMTS/HSPA-era radio: tens of milliseconds of one-way delay,
    /// single-digit Mb/s.
    ThreeG,
    /// LTE-era radio: low tens of milliseconds, tens of Mb/s.
    FourG,
}

impl Rat {
    /// Stable lowercase token used in scenario packs and model names.
    pub fn token(&self) -> &'static str {
        match self {
            Rat::ThreeG => "3g",
            Rat::FourG => "4g",
        }
    }

    /// Parse a pack token ("3g" / "4g").
    pub fn parse(s: &str) -> Option<Rat> {
        match s {
            "3g" => Some(Rat::ThreeG),
            "4g" => Some(Rat::FourG),
            _ => None,
        }
    }
}

/// An (operator, RAT) profile: the parameter ranges session realizations
/// are drawn from. Ranges are inclusive `(lo, hi)` bounds.
#[derive(Debug, Clone, Copy)]
pub struct ErrantProfile {
    /// Operator token ("op1".."op3").
    pub operator: &'static str,
    /// Radio access technology.
    pub rat: Rat,
    /// Session median downlink rate range, kb/s.
    pub rate_kbps: (f64, f64),
    /// Session median one-way delay range, milliseconds.
    pub delay_ms: (f64, f64),
    /// Session median loss-probability range (0–1).
    pub loss: (f64, f64),
    /// Typical reported signal level (WaveLAN-unit scale, for the
    /// device-report channel of the collection daemon).
    pub signal: f64,
}

/// The built-in profile table: three synthetic operators × two RATs.
/// Magnitudes follow the ERRANT paper's MONROE measurements, scaled so
/// the delays sit in the modulation layer's validated range.
pub const ERRANT_PROFILES: &[ErrantProfile] = &[
    ErrantProfile {
        operator: "op1",
        rat: Rat::ThreeG,
        rate_kbps: (1_800.0, 7_500.0),
        delay_ms: (22.0, 46.0),
        loss: (0.002, 0.020),
        signal: 14.0,
    },
    ErrantProfile {
        operator: "op1",
        rat: Rat::FourG,
        rate_kbps: (8_000.0, 42_000.0),
        delay_ms: (11.0, 24.0),
        loss: (0.000, 0.008),
        signal: 22.0,
    },
    ErrantProfile {
        operator: "op2",
        rat: Rat::ThreeG,
        rate_kbps: (1_200.0, 5_200.0),
        delay_ms: (26.0, 58.0),
        loss: (0.004, 0.028),
        signal: 12.0,
    },
    ErrantProfile {
        operator: "op2",
        rat: Rat::FourG,
        rate_kbps: (6_000.0, 30_000.0),
        delay_ms: (13.0, 30.0),
        loss: (0.001, 0.012),
        signal: 20.0,
    },
    ErrantProfile {
        operator: "op3",
        rat: Rat::ThreeG,
        rate_kbps: (900.0, 4_000.0),
        delay_ms: (30.0, 70.0),
        loss: (0.006, 0.035),
        signal: 10.0,
    },
    ErrantProfile {
        operator: "op3",
        rat: Rat::FourG,
        rate_kbps: (5_000.0, 24_000.0),
        delay_ms: (15.0, 34.0),
        loss: (0.002, 0.016),
        signal: 18.0,
    },
];

/// Look up a built-in profile by operator token and RAT.
pub fn profile(operator: &str, rat: Rat) -> Option<&'static ErrantProfile> {
    ERRANT_PROFILES
        .iter()
        .find(|p| p.operator == operator && p.rat == rat)
}

/// The operator tokens the built-in table knows.
pub fn operators() -> Vec<&'static str> {
    let mut ops: Vec<&'static str> = ERRANT_PROFILES.iter().map(|p| p.operator).collect();
    ops.dedup();
    ops
}

/// One session realization of an [`ErrantProfile`].
pub struct ErrantModel {
    name: String,
    profile: ErrantProfile,
    duration: SimDuration,
    /// Session medians — drawn once from the trial RNG.
    session_rate_kbps: f64,
    session_delay_ms: f64,
    session_loss: f64,
    /// Smooth temporal variation around the medians.
    walk: WalkState,
    tau: SimDuration,
}

impl ErrantModel {
    /// Draw a session realization of `profile`. The same `trial_rng`
    /// seed reproduces the same session exactly.
    pub fn new(profile: ErrantProfile, duration: SimDuration, trial_rng: &mut SimRng) -> Self {
        // Log-uniform rate draw (MONROE rate distributions are heavy
        // tailed); uniform for delay and loss.
        let (r_lo, r_hi) = profile.rate_kbps;
        let session_rate_kbps = r_lo * (r_hi / r_lo).powf(trial_rng.f64());
        let session_delay_ms = trial_rng.range_f64(profile.delay_ms.0, profile.delay_ms.1);
        let session_loss = trial_rng.range_f64(profile.loss.0, profile.loss.1);
        ErrantModel {
            name: format!("errant-{}-{}", profile.operator, profile.rat.token()),
            profile,
            duration,
            session_rate_kbps,
            session_delay_ms,
            session_loss,
            walk: WalkState::centered(),
            tau: SimDuration::from_secs(5),
        }
    }

    /// The session-median downlink rate this realization drew (kb/s).
    pub fn session_rate_kbps(&self) -> f64 {
        self.session_rate_kbps
    }

    /// The session-median one-way delay this realization drew (ms).
    pub fn session_delay_ms(&self) -> f64 {
        self.session_delay_ms
    }
}

impl ChannelModel for ErrantModel {
    fn sample(&mut self, now: SimTime, rng: &mut SimRng) -> LinkConditions {
        self.walk.advance(now, self.tau, rng);

        // Rate varies in [0.55, 1.10]× of the session median; delay is
        // biased toward the median with excursions to ~2.2×; loss
        // scales with the delay excursion (congestion correlates).
        let rate_kbps = self.session_rate_kbps * (0.55 + 0.55 * self.walk.bw_u);
        let u = self.walk.lat_u;
        let delay_ms = self.session_delay_ms * (0.75 + 1.45 * u * u);
        let loss = (self.session_loss * (0.5 + 1.5 * self.walk.loss_u)).clamp(0.0, 0.95);
        let signal = (self.profile.signal * (0.85 + 0.3 * self.walk.sig_u)).max(1.0);

        LinkConditions {
            latency: SimDuration::from_secs_f64(delay_ms / 1e3),
            bandwidth_bps: (rate_kbps * 1000.0).max(1000.0) as u64,
            loss,
            signal: SignalInfo::from_level(signal),
        }
    }

    fn duration(&self) -> SimDuration {
        self.duration
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> ErrantModel {
        let mut rng = SimRng::seed_from_u64(seed);
        let p = *profile("op1", Rat::FourG).unwrap();
        ErrantModel::new(p, SimDuration::from_secs(120), &mut rng)
    }

    #[test]
    fn session_realizations_are_seeded() {
        let a = model(7);
        let b = model(7);
        let c = model(8);
        assert_eq!(a.session_rate_kbps, b.session_rate_kbps);
        assert_eq!(a.session_delay_ms, b.session_delay_ms);
        assert_ne!(a.session_rate_kbps, c.session_rate_kbps);
    }

    #[test]
    fn sessions_stay_inside_profile_envelope() {
        for seed in 0..50 {
            let m = model(seed);
            let p = profile("op1", Rat::FourG).unwrap();
            assert!(m.session_rate_kbps >= p.rate_kbps.0 && m.session_rate_kbps <= p.rate_kbps.1);
            assert!(m.session_delay_ms >= p.delay_ms.0 && m.session_delay_ms <= p.delay_ms.1);
        }
    }

    #[test]
    fn rats_are_ordered_sensibly() {
        // 4G beats 3G on both rate and delay for every operator.
        for op in operators() {
            let g3 = profile(op, Rat::ThreeG).unwrap();
            let g4 = profile(op, Rat::FourG).unwrap();
            assert!(g4.rate_kbps.0 > g3.rate_kbps.1 * 0.5, "{op} rate ordering");
            assert!(g4.delay_ms.1 < g3.delay_ms.1, "{op} delay ordering");
        }
    }

    #[test]
    fn no_handoffs_and_stable_name() {
        let mut m = model(3);
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..100 {
            let c = m.sample(SimTime::from_millis(250 * i), &mut rng);
            assert!(c.loss < 1.0);
        }
        assert_eq!(m.handoffs(), 0);
        assert_eq!(m.name(), "errant-op1-4g");
    }
}
