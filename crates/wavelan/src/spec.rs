//! Serializable scenario specifications: define custom mobile scenarios
//! in JSON and load them in tools (`tracemod collect --scenario-file`),
//! exactly like exchanging trace files — the paper's vision of traces and
//! scenario definitions as shareable benchmark families (§6).

use crate::crosstraffic::CrossTrafficCfg;
use crate::model::Checkpoint;
use crate::scenario::Scenario;
use netsim::SimDuration;
use serde::{Deserialize, Serialize};

/// One checkpoint, as written in a scenario file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CheckpointSpec {
    /// Label shown on figure axes ("x0", "lobby", ...).
    pub label: String,
    /// Signal level range (WaveLAN units).
    pub signal: (f64, f64),
    /// One-way latency range in milliseconds.
    pub latency_ms: (f64, f64),
    /// Bandwidth range in kb/s.
    pub bw_kbps: (f64, f64),
    /// One-way loss-rate range (0–1).
    pub loss: (f64, f64),
}

/// Cross-traffic parameters, as written in a scenario file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CrossSpec {
    /// Number of interfering users.
    pub users: usize,
    /// Frames per burst (min, max).
    pub burst_frames: (u64, u64),
    /// Bytes per frame (min, max).
    pub frame_bytes: (u64, u64),
    /// Think time between bursts in seconds (min, max).
    pub think_secs: (f64, f64),
    /// Collision loss while a burst is active.
    pub collision_loss: f64,
}

/// A complete scenario definition file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name.
    pub name: String,
    /// Traversal duration in seconds.
    pub duration_secs: u64,
    /// Checkpoints along the traversal (at least two).
    pub checkpoints: Vec<CheckpointSpec>,
    /// Interfering traffic, if any.
    #[serde(default)]
    pub cross: Option<CrossSpec>,
    /// Stationary scenario (figures use histograms).
    #[serde(default)]
    pub stationary: bool,
    /// Uplink loss multiplier (1.0 = symmetric).
    #[serde(default = "default_asym")]
    pub loss_asym_up: f64,
}

fn default_asym() -> f64 {
    1.0
}

impl ScenarioSpec {
    /// Capture a built-in scenario as a spec (for `--dump` and editing).
    pub fn from_scenario(sc: &Scenario) -> ScenarioSpec {
        ScenarioSpec {
            name: sc.name.to_string(),
            duration_secs: sc.duration.as_secs_f64() as u64,
            checkpoints: sc
                .checkpoints
                .iter()
                .map(|c| CheckpointSpec {
                    label: c.label.to_string(),
                    signal: c.signal,
                    latency_ms: c.latency_ms,
                    bw_kbps: c.bw_kbps,
                    loss: c.loss,
                })
                .collect(),
            cross: sc.cross.as_ref().map(|c| CrossSpec {
                users: c.users,
                burst_frames: c.burst_frames,
                frame_bytes: c.frame_bytes,
                think_secs: c.think_secs,
                collision_loss: c.collision_loss,
            }),
            stationary: sc.stationary,
            loss_asym_up: sc.loss_asym_up,
        }
    }

    /// Build a runnable [`Scenario`]. Labels are interned (leaked) — specs
    /// are loaded a handful of times per process, from tools.
    pub fn into_scenario(self) -> Result<Scenario, String> {
        if self.checkpoints.len() < 2 {
            return Err("a scenario needs at least two checkpoints".into());
        }
        if self.duration_secs == 0 {
            return Err("duration_secs must be positive".into());
        }
        for c in &self.checkpoints {
            if !(0.0..=1.0).contains(&c.loss.0) || !(0.0..=1.0).contains(&c.loss.1) {
                return Err(format!("checkpoint '{}': loss out of [0,1]", c.label));
            }
            if c.bw_kbps.0 <= 0.0 {
                return Err(format!(
                    "checkpoint '{}': bandwidth must be positive",
                    c.label
                ));
            }
        }
        let checkpoints = self
            .checkpoints
            .into_iter()
            .map(|c| Checkpoint {
                label: Box::leak(c.label.into_boxed_str()),
                signal: c.signal,
                latency_ms: c.latency_ms,
                bw_kbps: c.bw_kbps,
                loss: c.loss,
            })
            .collect();
        Ok(Scenario {
            name: Box::leak(self.name.into_boxed_str()),
            checkpoints,
            duration: SimDuration::from_secs(self.duration_secs),
            cross: self.cross.map(|c| CrossTrafficCfg {
                users: c.users,
                burst_frames: c.burst_frames,
                frame_bytes: c.frame_bytes,
                think_secs: c.think_secs,
                collision_loss: c.collision_loss,
            }),
            stationary: self.stationary,
            loss_asym_up: self.loss_asym_up,
            model_spec: None,
        })
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_round_trip_through_json() {
        for sc in Scenario::all() {
            let spec = ScenarioSpec::from_scenario(&sc);
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).unwrap();
            assert_eq!(back, spec);
            let rebuilt = back.into_scenario().unwrap();
            assert_eq!(rebuilt.name, sc.name);
            assert_eq!(rebuilt.duration, sc.duration);
            assert_eq!(rebuilt.checkpoints.len(), sc.checkpoints.len());
            assert_eq!(rebuilt.stationary, sc.stationary);
            assert_eq!(rebuilt.loss_asym_up, sc.loss_asym_up);
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = ScenarioSpec::from_scenario(&Scenario::porter());
        spec.checkpoints.truncate(1);
        assert!(spec.into_scenario().is_err());

        let mut spec = ScenarioSpec::from_scenario(&Scenario::porter());
        spec.duration_secs = 0;
        assert!(spec.into_scenario().is_err());

        let mut spec = ScenarioSpec::from_scenario(&Scenario::porter());
        spec.checkpoints[0].loss = (0.0, 1.5);
        assert!(spec.into_scenario().is_err());

        let mut spec = ScenarioSpec::from_scenario(&Scenario::porter());
        spec.checkpoints[0].bw_kbps = (0.0, 100.0);
        assert!(spec.into_scenario().is_err());
    }

    #[test]
    fn defaults_for_optional_fields() {
        let json = r#"{
            "name": "minimal",
            "duration_secs": 30,
            "checkpoints": [
                {"label": "a", "signal": [10, 20], "latency_ms": [1, 5],
                 "bw_kbps": [1000, 1500], "loss": [0, 0.02]},
                {"label": "b", "signal": [5, 10], "latency_ms": [2, 8],
                 "bw_kbps": [800, 1200], "loss": [0.01, 0.05]}
            ]
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        assert!(spec.cross.is_none());
        assert!(!spec.stationary);
        assert_eq!(spec.loss_asym_up, 1.0);
        let sc = spec.into_scenario().unwrap();
        assert_eq!(sc.name, "minimal");
        assert_eq!(sc.labels(), vec!["a", "b"]);
    }

    #[test]
    fn custom_scenario_is_runnable() {
        let json = r#"{
            "name": "hallway",
            "duration_secs": 20,
            "checkpoints": [
                {"label": "door", "signal": [15, 20], "latency_ms": [1, 4],
                 "bw_kbps": [1400, 1600], "loss": [0, 0.01]},
                {"label": "stairs", "signal": [4, 8], "latency_ms": [5, 30],
                 "bw_kbps": [300, 900], "loss": [0.05, 0.2]}
            ]
        }"#;
        let sc = ScenarioSpec::from_json(json)
            .unwrap()
            .into_scenario()
            .unwrap();
        let mut trial = netsim::SimRng::seed_from_u64(1);
        let mut model = sc.model(&mut trial);
        let mut rng = netsim::SimRng::seed_from_u64(2);
        let early = model.sample(netsim::SimTime::from_secs(1), &mut rng);
        let late = model.sample(netsim::SimTime::from_secs(19), &mut rng);
        assert!(early.signal.level > late.signal.level);
    }
}
