//! SynRGen-like interfering traffic for the Chatterbox scenario.
//!
//! The paper places the traced host in a room with five laptops running
//! SynRGen, a synthetic file-reference generator modeling users in an
//! edit-debug cycle over NFS. We reproduce the *channel-visible* effect:
//! bursts of medium occupancy (frames on the air) separated by think
//! times, plus elevated collision loss while bursts overlap.

use netsim::{SimDuration, SimRng, SimTime};

/// Configuration of the interfering-user population.
#[derive(Debug, Clone)]
pub struct CrossTrafficCfg {
    /// Number of interfering laptops.
    pub users: usize,
    /// Frames per burst (min, max).
    pub burst_frames: (u64, u64),
    /// Bytes per interfering frame (min, max) — NFS traffic mixes small
    /// status checks with 1 KB data blocks.
    pub frame_bytes: (u64, u64),
    /// Think time between bursts in seconds (min, max) — the edit phase
    /// of the edit-debug cycle.
    pub think_secs: (f64, f64),
    /// Additional loss probability applied to foreground packets while at
    /// least one burst is occupying the medium (collisions/capture).
    pub collision_loss: f64,
}

impl CrossTrafficCfg {
    /// The Chatterbox configuration: five SynRGen users.
    pub fn chatterbox() -> Self {
        // Duty cycle per user ≈ 5% (mean burst ≈ 0.15 s of air, mean
        // think ≈ 3 s), so five users contend for ~25% of the medium —
        // enough to degrade latency and bandwidth visibly (Figure 5)
        // without saturating it.
        CrossTrafficCfg {
            users: 5,
            burst_frames: (10, 60),
            frame_bytes: (80, 1100),
            think_secs: (1.0, 5.0),
            collision_loss: 0.008,
        }
    }
}

/// Runtime state of the interfering population (driven by the channel's
/// timers; this struct just does the math).
#[derive(Debug)]
pub struct CrossTraffic {
    /// Configuration.
    pub cfg: CrossTrafficCfg,
    /// Medium is contended until this instant.
    pub burst_active_until: SimTime,
    /// Total interfering frames generated (diagnostics).
    pub frames_generated: u64,
}

impl CrossTraffic {
    /// New idle population.
    pub fn new(cfg: CrossTrafficCfg) -> Self {
        CrossTraffic {
            cfg,
            burst_active_until: SimTime::ZERO,
            frames_generated: 0,
        }
    }

    /// Draw the initial per-user offset so users do not start in phase.
    pub fn initial_delay(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.range_f64(0.0, self.cfg.think_secs.1))
    }

    /// One user's burst fires: returns the total air time the burst
    /// occupies at `bandwidth_bps`, and updates contention state.
    pub fn burst(&mut self, now: SimTime, bandwidth_bps: u64, rng: &mut SimRng) -> SimDuration {
        let frames = rng.range_u64(self.cfg.burst_frames.0, self.cfg.burst_frames.1 + 1);
        let mut air = SimDuration::ZERO;
        for _ in 0..frames {
            let bytes = rng.range_u64(self.cfg.frame_bytes.0, self.cfg.frame_bytes.1 + 1);
            air += SimDuration::transmission(bytes as usize, bandwidth_bps);
        }
        self.frames_generated += frames;
        let end = now + air;
        if end > self.burst_active_until {
            self.burst_active_until = end;
        }
        air
    }

    /// Think time until this user's next burst.
    pub fn next_think(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.range_f64(self.cfg.think_secs.0, self.cfg.think_secs.1))
    }

    /// Extra loss imposed on a foreground packet sent at `now`.
    pub fn contention_loss(&self, now: SimTime) -> f64 {
        if now < self.burst_active_until {
            self.cfg.collision_loss
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_occupies_air_and_raises_loss() {
        let mut ct = CrossTraffic::new(CrossTrafficCfg::chatterbox());
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::from_secs(1);
        assert_eq!(ct.contention_loss(now), 0.0);
        let air = ct.burst(now, 2_000_000, &mut rng);
        assert!(!air.is_zero());
        assert!(ct.burst_active_until > now);
        assert!(ct.contention_loss(now) > 0.0);
        assert_eq!(ct.contention_loss(ct.burst_active_until), 0.0);
        assert!(ct.frames_generated >= 10);
    }

    #[test]
    fn overlapping_bursts_extend_contention() {
        let mut ct = CrossTraffic::new(CrossTrafficCfg::chatterbox());
        let mut rng = SimRng::seed_from_u64(2);
        ct.burst(SimTime::from_secs(1), 2_000_000, &mut rng);
        let first_end = ct.burst_active_until;
        ct.burst(first_end - SimDuration::from_millis(1), 2_000_000, &mut rng);
        assert!(ct.burst_active_until > first_end);
    }

    #[test]
    fn think_times_within_range() {
        let ct = CrossTraffic::new(CrossTrafficCfg::chatterbox());
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = ct.next_think(&mut rng).as_secs_f64();
            assert!((1.0..=5.0).contains(&t), "{t}");
        }
    }
}
