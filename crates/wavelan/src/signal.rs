//! WaveLAN device signal reporting.
//!
//! The AT&T WaveLAN driver reports three quantities the paper records
//! alongside packet traffic: signal level, signal quality, and silence
//! (noise-floor) level, in device-specific units. Levels below ~5 are
//! treated as background noise by the driver (§4.1).

/// A snapshot of what the WaveLAN device reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalInfo {
    /// Signal level in WaveLAN units (roughly 0–50; ≥ ~5 is usable).
    pub level: f64,
    /// Signal quality in WaveLAN units (0–15).
    pub quality: f64,
    /// Silence (noise floor) level in WaveLAN units.
    pub silence: f64,
}

impl SignalInfo {
    /// The driver's noise threshold: levels below this are background.
    pub const NOISE_FLOOR: f64 = 5.0;

    /// A dead-air reading.
    pub fn none() -> Self {
        SignalInfo {
            level: 0.0,
            quality: 0.0,
            silence: 2.0,
        }
    }

    /// Construct a reading from a signal level, deriving plausible
    /// quality/silence values the way the device's firmware correlates
    /// them (quality tracks level, saturating; silence stays near 2).
    pub fn from_level(level: f64) -> Self {
        let level = level.clamp(0.0, 50.0);
        SignalInfo {
            level,
            quality: (level * 0.6).clamp(0.0, 15.0),
            silence: 2.0,
        }
    }

    /// Whether the driver would consider this usable signal.
    pub fn is_usable(&self) -> bool {
        self.level >= Self::NOISE_FLOOR
    }

    /// Quantized form for trace records (the on-disk format stores
    /// integers, like the real driver ioctl).
    pub fn quantized(&self) -> (u32, u32, u32) {
        (
            self.level.round().max(0.0) as u32,
            self.quality.round().max(0.0) as u32,
            self.silence.round().max(0.0) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_level_clamps_and_derives() {
        let s = SignalInfo::from_level(30.0);
        assert_eq!(s.level, 30.0);
        assert_eq!(s.quality, 15.0); // saturated
        let s = SignalInfo::from_level(-3.0);
        assert_eq!(s.level, 0.0);
        assert!(!s.is_usable());
        let s = SignalInfo::from_level(100.0);
        assert_eq!(s.level, 50.0);
    }

    #[test]
    fn usability_threshold() {
        assert!(SignalInfo::from_level(5.0).is_usable());
        assert!(!SignalInfo::from_level(4.9).is_usable());
        assert!(!SignalInfo::none().is_usable());
    }

    #[test]
    fn quantized_rounds() {
        let s = SignalInfo {
            level: 17.6,
            quality: 9.4,
            silence: 2.0,
        };
        assert_eq!(s.quantized(), (18, 9, 2));
    }
}
