//! The paper's four evaluation scenarios (§4.1), expressed as checkpoint
//! tables whose parameter ranges match Figures 2–5:
//!
//! * **Porter** — inter-building travel: Wean lobby → outdoor patio →
//!   Porter Hall; variable start, good patio, degrading interior.
//! * **Flagstaff** — outdoor travel through Schenley Park; signal drops
//!   sharply on park entry, loss grows late in the traversal.
//! * **Wean** — office → elevator → classroom; an elevator ride with
//!   atrocious loss and 350 ms latency spikes.
//! * **Chatterbox** — stationary in a conference room with five SynRGen
//!   users; high signal, degraded latency/bandwidth from contention.

use crate::channel::WirelessChannel;
use crate::crosstraffic::CrossTrafficCfg;
use crate::model::{ChannelModel, Checkpoint, PiecewiseModel};
use crate::registry::{ModelSpec, Registry};
use netsim::{SimDuration, SimRng};

/// A named mobile scenario: path checkpoints plus optional cross traffic.
///
/// ```
/// use wavelan::{ChannelModel, Scenario};
/// use netsim::{SimRng, SimTime};
///
/// let wean = Scenario::wean();
/// let mut trial_rng = SimRng::seed_from_u64(1);
/// let mut model = wean.model(&mut trial_rng);
/// let mut rng = SimRng::seed_from_u64(2);
/// // Mid-elevator, conditions are dire.
/// let ride = model.sample(SimTime::from_secs(100), &mut rng);
/// assert!(ride.loss > 0.2 || ride.latency.as_millis_f64() > 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name ("porter", "flagstaff", "wean", "chatterbox").
    pub name: &'static str,
    /// Checkpoint targets along the traversal.
    pub checkpoints: Vec<Checkpoint>,
    /// Traversal duration.
    pub duration: SimDuration,
    /// Interfering traffic, if any.
    pub cross: Option<CrossTrafficCfg>,
    /// True when there is no physical motion (Chatterbox): figures use
    /// histograms instead of checkpoint plots.
    pub stationary: bool,
    /// Uplink loss multiplier (see `WirelessChannel::loss_asym_up`):
    /// reproduces the send/recv asymmetry of the real WaveLAN (§5.3).
    pub loss_asym_up: f64,
    /// When set, [`model`](Self::model) builds this spec through the
    /// model [`Registry`] instead of the checkpoint-interpolated
    /// WaveLAN model — the scenario-pack path. `None` for the four
    /// built-in paper scenarios.
    pub model_spec: Option<ModelSpec>,
}

const fn cp(
    label: &'static str,
    signal: (f64, f64),
    latency_ms: (f64, f64),
    bw_kbps: (f64, f64),
    loss: (f64, f64),
) -> Checkpoint {
    Checkpoint {
        label,
        signal,
        latency_ms,
        bw_kbps,
        loss,
    }
}

impl Scenario {
    /// Porter: inter-building travel (Figure 2).
    pub fn porter() -> Scenario {
        Scenario {
            name: "porter",
            checkpoints: vec![
                cp(
                    "x0",
                    (8.0, 22.0),
                    (1.5, 30.0),
                    (1300.0, 1550.0),
                    (0.005, 0.04),
                ),
                cp(
                    "x1",
                    (10.0, 20.0),
                    (1.5, 12.0),
                    (1350.0, 1600.0),
                    (0.003, 0.03),
                ),
                cp(
                    "x2",
                    (14.0, 22.0),
                    (1.5, 10.0),
                    (1400.0, 1600.0),
                    (0.001, 0.02),
                ),
                cp(
                    "x3",
                    (17.0, 23.0),
                    (1.5, 8.0),
                    (1450.0, 1620.0),
                    (0.001, 0.01),
                ),
                cp(
                    "x4",
                    (17.0, 22.0),
                    (1.5, 8.0),
                    (1400.0, 1600.0),
                    (0.001, 0.015),
                ),
                cp(
                    "x5",
                    (6.0, 18.0),
                    (2.0, 100.0),
                    (900.0, 1500.0),
                    (0.005, 0.04),
                ),
                cp(
                    "x6",
                    (5.0, 14.0),
                    (2.0, 60.0),
                    (1000.0, 1450.0),
                    (0.01, 0.05),
                ),
            ],
            duration: SimDuration::from_secs(180),
            cross: None,
            stationary: false,
            loss_asym_up: 1.05,
            model_spec: None,
        }
    }

    /// Flagstaff: outdoor travel (Figure 3).
    pub fn flagstaff() -> Scenario {
        Scenario {
            name: "flagstaff",
            checkpoints: vec![
                cp(
                    "y0",
                    (10.0, 20.0),
                    (1.0, 8.0),
                    (1450.0, 1700.0),
                    (0.004, 0.012),
                ),
                cp(
                    "y1",
                    (8.0, 18.0),
                    (1.0, 6.0),
                    (1450.0, 1700.0),
                    (0.004, 0.012),
                ),
                cp(
                    "y2",
                    (6.0, 10.0),
                    (1.0, 5.0),
                    (1500.0, 1700.0),
                    (0.006, 0.02),
                ),
                cp(
                    "y3",
                    (5.0, 9.0),
                    (1.0, 5.0),
                    (1500.0, 1700.0),
                    (0.008, 0.025),
                ),
                cp("y4", (5.0, 8.0), (1.0, 5.0), (1500.0, 1700.0), (0.01, 0.03)),
                cp(
                    "y5",
                    (5.0, 8.0),
                    (1.0, 5.0),
                    (1500.0, 1700.0),
                    (0.012, 0.035),
                ),
                cp(
                    "y6",
                    (5.0, 8.0),
                    (1.0, 5.0),
                    (1450.0, 1650.0),
                    (0.015, 0.04),
                ),
                cp(
                    "y7",
                    (5.0, 7.0),
                    (1.0, 5.0),
                    (1450.0, 1650.0),
                    (0.018, 0.045),
                ),
                cp("y8", (5.0, 7.0), (1.0, 5.0), (1450.0, 1650.0), (0.02, 0.05)),
                cp(
                    "y9",
                    (5.0, 8.0),
                    (1.0, 5.0),
                    (1450.0, 1650.0),
                    (0.018, 0.045),
                ),
            ],
            duration: SimDuration::from_secs(240),
            cross: None,
            stationary: false,
            // The paper's Flagstaff runs were strongly asymmetric: real
            // send 88.2 s vs recv 61.9 s (§5.3).
            loss_asym_up: 1.7,
            model_spec: None,
        }
    }

    /// Wean: office → elevator → classroom (Figure 4).
    pub fn wean() -> Scenario {
        Scenario {
            name: "wean",
            checkpoints: vec![
                cp(
                    "z0",
                    (8.0, 16.0),
                    (2.0, 15.0),
                    (1200.0, 1400.0),
                    (0.005, 0.02),
                ),
                cp(
                    "z1",
                    (10.0, 18.0),
                    (1.5, 10.0),
                    (1250.0, 1450.0),
                    (0.001, 0.01),
                ),
                cp(
                    "z2",
                    (10.0, 18.0),
                    (1.5, 10.0),
                    (1250.0, 1450.0),
                    (0.001, 0.01),
                ),
                cp(
                    "z2b",
                    (12.0, 18.0),
                    (1.5, 8.0),
                    (1250.0, 1450.0),
                    (0.001, 0.01),
                ),
                cp(
                    "z3",
                    (17.0, 22.0),
                    (1.5, 6.0),
                    (1300.0, 1450.0),
                    (0.001, 0.008),
                ),
                cp(
                    "z4",
                    (14.0, 20.0),
                    (2.0, 10.0),
                    (1250.0, 1400.0),
                    (0.002, 0.015),
                ),
                // The elevator ride: signal collapses, latency peaks at
                // 350 ms, loss is atrocious.
                cp(
                    "z4e",
                    (1.0, 4.0),
                    (20.0, 350.0),
                    (60.0, 400.0),
                    (0.45, 0.80),
                ),
                cp(
                    "z5",
                    (12.0, 20.0),
                    (1.5, 8.0),
                    (1250.0, 1450.0),
                    (0.002, 0.015),
                ),
                cp(
                    "z6",
                    (14.0, 20.0),
                    (1.5, 6.0),
                    (1300.0, 1450.0),
                    (0.001, 0.01),
                ),
                cp(
                    "z7",
                    (15.0, 20.0),
                    (1.5, 6.0),
                    (1300.0, 1450.0),
                    (0.001, 0.01),
                ),
            ],
            duration: SimDuration::from_secs(150),
            cross: None,
            stationary: false,
            loss_asym_up: 1.25,
            model_spec: None,
        }
    }

    /// Chatterbox: busy conference room (Figure 5).
    pub fn chatterbox() -> Scenario {
        let steady = cp(
            "c",
            (16.0, 20.0),
            (2.0, 40.0),
            (900.0, 1300.0),
            (0.001, 0.01),
        );
        Scenario {
            name: "chatterbox",
            checkpoints: vec![steady, steady],
            duration: SimDuration::from_secs(180),
            cross: Some(CrossTrafficCfg::chatterbox()),
            stationary: true,
            loss_asym_up: 1.0,
            model_spec: None,
        }
    }

    /// All four, in the paper's order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::wean(),
            Scenario::porter(),
            Scenario::flagstaff(),
            Scenario::chatterbox(),
        ]
    }

    /// Look a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// Build one trial's channel model. `trial_rng` should be seeded from
    /// the trial number so trials vary but reproduce. Scenarios carrying
    /// a [`ModelSpec`] (loaded from a scenario pack) build it through
    /// the [`Registry`]; the four built-ins construct their checkpoint
    /// model directly.
    pub fn model(&self, trial_rng: &mut SimRng) -> Box<dyn ChannelModel> {
        match &self.model_spec {
            Some(spec) => Registry::builtin()
                .build(spec, self.duration, trial_rng)
                .expect("scenario-pack specs are validated at load time"),
            None => Box::new(PiecewiseModel::new(
                self.name,
                self.checkpoints.clone(),
                self.duration,
                trial_rng,
            )),
        }
    }

    /// `(model family, canonical params)` for manifests/telemetry.
    pub fn model_info(&self) -> (String, String) {
        match &self.model_spec {
            Some(spec) => spec.info(),
            None => ("piecewise".to_string(), format!("scenario={}", self.name)),
        }
    }

    /// Build one trial's complete wireless channel.
    pub fn channel(&self, trial_rng: &mut SimRng) -> WirelessChannel {
        let model = self.model(trial_rng);
        let mut ch = WirelessChannel::new(model);
        ch.loss_asym_up = self.loss_asym_up;
        if let Some(cfg) = &self.cross {
            // Per-trial activity level: how hard the interfering users
            // work varies a lot between sessions — the source of the
            // paper's very large Chatterbox standard deviations (§5.5).
            let mut cfg = cfg.clone();
            let activity = trial_rng.range_f64(0.45, 1.35);
            cfg.burst_frames = (
                ((cfg.burst_frames.0 as f64 * activity) as u64).max(1),
                ((cfg.burst_frames.1 as f64 * activity) as u64).max(2),
            );
            ch = ch.with_cross_traffic(cfg);
        }
        ch
    }

    /// Checkpoint labels (the X axis of Figures 2–4).
    pub fn labels(&self) -> Vec<&'static str> {
        self.checkpoints.iter().map(|c| c.label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    #[test]
    fn four_scenarios_with_expected_shapes() {
        let all = Scenario::all();
        assert_eq!(all.len(), 4);
        let names: Vec<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["wean", "porter", "flagstaff", "chatterbox"]);
        assert!(Scenario::by_name("porter").is_some());
        assert!(Scenario::by_name("nonesuch").is_none());
    }

    #[test]
    fn chatterbox_is_stationary_with_cross_traffic() {
        let c = Scenario::chatterbox();
        assert!(c.stationary);
        assert!(c.cross.is_some());
        assert!(!Scenario::porter().stationary);
        assert!(Scenario::porter().cross.is_none());
    }

    #[test]
    fn wean_elevator_is_the_worst_region() {
        let w = Scenario::wean();
        let worst = w
            .checkpoints
            .iter()
            .max_by(|a, b| a.loss.1.total_cmp(&b.loss.1))
            .unwrap();
        assert_eq!(worst.label, "z4e");
        assert!(worst.loss.1 >= 0.75);
        assert!(worst.latency_ms.1 >= 350.0);
        assert!(worst.signal.1 <= 5.0);
    }

    #[test]
    fn flagstaff_loss_grows_late() {
        let f = Scenario::flagstaff();
        let early = f.checkpoints[1].loss.1;
        let late = f.checkpoints[8].loss.1;
        assert!(late > 2.0 * early);
    }

    #[test]
    fn models_sample_in_range() {
        let mut trial = SimRng::seed_from_u64(11);
        for sc in Scenario::all() {
            let mut m = sc.model(&mut trial);
            let mut rng = SimRng::seed_from_u64(12);
            for i in 0..200 {
                let t = SimTime::from_nanos(sc.duration.as_nanos() * i / 200);
                let c = m.sample(t, &mut rng);
                assert!(
                    c.loss >= 0.0 && c.loss <= 0.95,
                    "{}: loss {}",
                    sc.name,
                    c.loss
                );
                assert!(
                    c.bandwidth_bps >= 1000,
                    "{}: bw {}",
                    sc.name,
                    c.bandwidth_bps
                );
                assert!(
                    c.latency.as_millis_f64() < 600.0,
                    "{}: latency {}",
                    sc.name,
                    c.latency
                );
            }
        }
    }
}
