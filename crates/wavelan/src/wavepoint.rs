//! WavePoint infrastructure and physical signal propagation: an
//! alternative, physically-grounded [`ChannelModel`].
//!
//! The empirical scenario models ([`crate::scenario`]) specify observed
//! parameter ranges directly. This module instead derives them: base
//! stations ("WavePoints, bridges to an Ethernet") are placed on a floor
//! plan, signal level follows log-distance path loss with shadowing, the
//! roaming protocol hands the mobile off to the strongest station (with
//! hysteresis and a brief outage, §3.1.1), and latency/bandwidth/loss are
//! functions of the received signal — the way a real WaveLAN degrades.

use crate::mobility::{MobilityPath, Position};
use crate::model::{ChannelModel, LinkConditions};
use crate::signal::SignalInfo;
use netsim::{SimDuration, SimRng, SimTime};

/// One WavePoint base station.
#[derive(Debug, Clone, Copy)]
pub struct WavePoint {
    /// Location.
    pub pos: Position,
    /// Transmit-power offset in WaveLAN signal units (0 = nominal).
    pub power_offset: f64,
}

impl WavePoint {
    /// A nominal-power WavePoint at `pos`.
    pub fn at(pos: Position) -> Self {
        WavePoint {
            pos,
            power_offset: 0.0,
        }
    }
}

/// Propagation parameters (log-distance path loss, in WaveLAN units).
#[derive(Debug, Clone, Copy)]
pub struct Propagation {
    /// Signal level at the reference distance.
    pub level_at_ref: f64,
    /// Reference distance in meters.
    pub ref_distance: f64,
    /// Path-loss exponent (≈2 free space; 3–4 indoors).
    pub exponent: f64,
    /// Shadowing standard deviation (slow fading), WaveLAN units.
    pub shadowing_sigma: f64,
}

impl Default for Propagation {
    fn default() -> Self {
        Propagation {
            level_at_ref: 34.0,
            ref_distance: 3.0,
            exponent: 3.2,
            shadowing_sigma: 2.0,
        }
    }
}

impl Propagation {
    /// Mean signal level at `distance` meters (before shadowing).
    pub fn level_at(&self, distance: f64) -> f64 {
        let d = distance.max(self.ref_distance);
        // 10·n·log10(d/d0) loss, scaled into WaveLAN's unit range.
        (self.level_at_ref - 10.0 * self.exponent * (d / self.ref_distance).log10() * 0.55).max(0.0)
    }
}

/// How signal level maps to link conditions — the device's rate/robustness
/// behaviour.
#[derive(Debug, Clone, Copy)]
pub struct SignalResponse {
    /// Signal at/above which the link runs at full quality.
    pub good: f64,
    /// Signal at/below which the link is unusable.
    pub dead: f64,
    /// Bandwidth at full quality (b/s).
    pub bw_full_bps: f64,
    /// Bandwidth floor near the dead zone (b/s).
    pub bw_floor_bps: f64,
    /// Base one-way latency.
    pub base_latency: SimDuration,
    /// Loss probability near the dead zone.
    pub loss_at_dead: f64,
}

impl Default for SignalResponse {
    fn default() -> Self {
        SignalResponse {
            good: 12.0,
            dead: 3.0,
            bw_full_bps: 1_550_000.0,
            bw_floor_bps: 120_000.0,
            base_latency: SimDuration::from_millis(2),
            loss_at_dead: 0.85,
        }
    }
}

impl SignalResponse {
    /// Fraction of full quality at `level` (1 at `good`, 0 at `dead`).
    fn quality(&self, level: f64) -> f64 {
        ((level - self.dead) / (self.good - self.dead)).clamp(0.0, 1.0)
    }
}

/// Handoff (roaming-protocol) parameters.
#[derive(Debug, Clone, Copy)]
pub struct HandoffConfig {
    /// A rival station must beat the current one by this margin to
    /// trigger a handoff (hysteresis).
    pub hysteresis: f64,
    /// Communication outage while re-associating.
    pub outage: SimDuration,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            hysteresis: 3.0,
            outage: SimDuration::from_millis(400),
        }
    }
}

/// Counters for diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhysicalStats {
    /// Handoffs performed.
    pub handoffs: u64,
}

/// The physical channel model: mobility + propagation + handoff.
pub struct PhysicalModel {
    name: String,
    path: MobilityPath,
    stations: Vec<WavePoint>,
    prop: Propagation,
    response: SignalResponse,
    handoff: HandoffConfig,
    associated: usize,
    outage_until: SimTime,
    shadow: f64,
    shadow_at: SimTime,
    stats: PhysicalStats,
}

impl PhysicalModel {
    /// Build a model for a walk through a set of stations.
    pub fn new(name: &str, path: MobilityPath, stations: Vec<WavePoint>) -> Self {
        assert!(!stations.is_empty(), "need at least one WavePoint");
        PhysicalModel {
            name: name.to_string(),
            path,
            stations,
            prop: Propagation::default(),
            response: SignalResponse::default(),
            handoff: HandoffConfig::default(),
            associated: 0,
            outage_until: SimTime::ZERO,
            shadow: 0.0,
            shadow_at: SimTime::ZERO,
            stats: PhysicalStats::default(),
        }
    }

    /// Override propagation parameters.
    pub fn with_propagation(mut self, p: Propagation) -> Self {
        self.prop = p;
        self
    }

    /// Override the signal-response curve.
    pub fn with_response(mut self, r: SignalResponse) -> Self {
        self.response = r;
        self
    }

    /// Override handoff behaviour.
    pub fn with_handoff(mut self, h: HandoffConfig) -> Self {
        self.handoff = h;
        self
    }

    /// Diagnostics.
    pub fn stats(&self) -> PhysicalStats {
        self.stats
    }

    /// Index of the currently associated station.
    pub fn associated_station(&self) -> usize {
        self.associated
    }

    fn mean_level(&self, station: usize, pos: &Position) -> f64 {
        let st = &self.stations[station];
        self.prop.level_at(st.pos.distance(pos)) + st.power_offset
    }

    fn update_shadowing(&mut self, now: SimTime, rng: &mut SimRng) {
        // Slow log-normal shadowing: random walk with ~2 s correlation.
        let dt = now.since(self.shadow_at).as_secs_f64();
        self.shadow_at = now;
        if dt <= 0.0 {
            return;
        }
        let sigma = self.prop.shadowing_sigma * (dt / 2.0).sqrt().min(1.0);
        self.shadow = (self.shadow + rng.normal(0.0, sigma)).clamp(
            -2.5 * self.prop.shadowing_sigma,
            2.5 * self.prop.shadowing_sigma,
        );
    }
}

impl ChannelModel for PhysicalModel {
    fn sample(&mut self, now: SimTime, rng: &mut SimRng) -> LinkConditions {
        let pos = self.path.position_at(now);
        self.update_shadowing(now, rng);

        // Roaming: consider the strongest station; hand off with
        // hysteresis, paying an outage window.
        let current = self.mean_level(self.associated, &pos);
        let (best_idx, best_level) = (0..self.stations.len())
            .map(|i| (i, self.mean_level(i, &pos)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("stations is non-empty");
        if best_idx != self.associated && best_level > current + self.handoff.hysteresis {
            self.associated = best_idx;
            // Saturating: queried at `SimTime::MAX`-ish instants the
            // outage window must clamp, not overflow.
            self.outage_until = now.saturating_add(self.handoff.outage);
            self.stats.handoffs += 1;
        }

        let level = (self.mean_level(self.associated, &pos) + self.shadow).max(0.0);
        let q = self.response.quality(level);
        let in_outage = now < self.outage_until;

        let bw = self.response.bw_floor_bps
            + (self.response.bw_full_bps - self.response.bw_floor_bps) * q;
        // Latency inflates as the link degrades (retries at the MAC).
        let lat_scale = 1.0 + (1.0 - q) * 20.0 + if in_outage { 60.0 } else { 0.0 };
        let loss = if in_outage {
            1.0
        } else {
            self.response.loss_at_dead * (1.0 - q).powi(2)
        };

        LinkConditions {
            latency: self.response.base_latency.mul_f64(lat_scale),
            bandwidth_bps: bw as u64,
            loss,
            signal: SignalInfo::from_level(level),
        }
    }

    fn duration(&self) -> SimDuration {
        self.path.duration()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handoffs(&self) -> u64 {
        self.stats.handoffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WalkBuilder;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(9)
    }

    #[test]
    fn signal_decays_with_distance() {
        let p = Propagation::default();
        let near = p.level_at(3.0);
        let mid = p.level_at(30.0);
        let far = p.level_at(300.0);
        assert!(near > mid && mid > far, "{near} {mid} {far}");
        assert!(near >= 30.0);
        assert!(far < 10.0);
    }

    #[test]
    fn walking_between_stations_hands_off() {
        // Two stations 120 m apart; walk from one to the other.
        let path = WalkBuilder::start_at(Position::new(0.0, 0.0))
            .walk_to(Position::new(120.0, 0.0), 1.5)
            .build();
        let stations = vec![
            WavePoint::at(Position::new(0.0, 5.0)),
            WavePoint::at(Position::new(120.0, 5.0)),
        ];
        let mut m = PhysicalModel::new("two-cell", path, stations);
        let mut r = rng();
        let dur = m.duration();
        let mut outage_seen = false;
        for i in 0..200 {
            let t = SimTime::from_nanos(dur.as_nanos() * i / 200);
            let c = m.sample(t, &mut r);
            if c.loss >= 1.0 {
                outage_seen = true;
            }
        }
        assert_eq!(m.stats().handoffs, 1, "expected exactly one handoff");
        assert_eq!(m.associated_station(), 1);
        assert!(outage_seen, "handoff outage not observed");
    }

    #[test]
    fn conditions_track_signal_quality() {
        let path = MobilityPath::stationary(Position::new(0.0, 0.0));
        let stations = vec![WavePoint::at(Position::new(0.0, 3.0))];
        let mut near = PhysicalModel::new("near", path, stations);
        let far_path = MobilityPath::stationary(Position::new(200.0, 0.0));
        let far_stations = vec![WavePoint::at(Position::new(0.0, 3.0))];
        let mut far = PhysicalModel::new("far", far_path, far_stations);
        let mut r = rng();
        let cn = near.sample(SimTime::from_secs(1), &mut r);
        let cf = far.sample(SimTime::from_secs(1), &mut r);
        assert!(cn.signal.level > cf.signal.level);
        assert!(cn.bandwidth_bps > cf.bandwidth_bps);
        assert!(cn.loss < cf.loss);
        assert!(cn.latency < cf.latency);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        // Stand exactly between two equal stations: shadowing wiggles the
        // levels but hysteresis (3 units) must prevent constant handoffs.
        let path = MobilityPath::stationary(Position::new(60.0, 0.0));
        let stations = vec![
            WavePoint::at(Position::new(0.0, 0.0)),
            WavePoint::at(Position::new(120.0, 0.0)),
        ];
        let mut m = PhysicalModel::new("between", path, stations);
        let mut r = rng();
        for i in 0..1000 {
            let _ = m.sample(SimTime::from_millis(100 * i), &mut r);
        }
        assert!(
            m.stats().handoffs < 12,
            "flapping: {} handoffs",
            m.stats().handoffs
        );
    }

    #[test]
    fn physical_model_drives_a_channel() {
        use crate::channel::{WirelessChannel, MOBILE_PORT};
        use netsim::{EventKind, Frame, Node, PortId, Simulator};

        struct Sink(u32);
        impl Node for Sink {
            fn on_event(&mut self, ev: EventKind, _ctx: &mut netsim::Context<'_>) {
                if matches!(ev, EventKind::Deliver { .. }) {
                    self.0 += 1;
                }
            }
        }

        let path = WalkBuilder::start_at(Position::new(0.0, 0.0))
            .walk_to(Position::new(60.0, 0.0), 1.5)
            .build();
        let model = PhysicalModel::new("walk", path, vec![WavePoint::at(Position::new(10.0, 5.0))]);
        let mut sim = Simulator::new(4);
        let a = sim.add_node(Box::new(Sink(0)));
        let b = sim.add_node(Box::new(Sink(0)));
        let ch =
            WirelessChannel::new(Box::new(model)).install(&mut sim, (a, PortId(0)), (b, PortId(0)));
        for i in 0..20u64 {
            sim.schedule_event(
                SimTime::from_secs(i),
                ch,
                EventKind::Deliver {
                    port: MOBILE_PORT,
                    frame: Frame::new(vec![0u8; 200], SimTime::ZERO),
                },
            );
        }
        sim.run_until(SimTime::from_secs(60));
        let delivered = sim.node::<Sink>(b).0;
        assert!(delivered >= 15, "only {delivered}/20 delivered");
    }
}
