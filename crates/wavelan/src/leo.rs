//! LEO satellite channel model: deterministic orbital-pass handoff
//! schedule with per-pass delay steps and handoff outage windows.
//!
//! Trace-driven satellite emulators model a LEO link as a sequence of
//! *passes*: while one satellite is visible, propagation delay follows
//! its elevation arc (longest at the horizon, shortest at zenith), and
//! at each pass boundary the terminal hands off to the next satellite
//! through a brief outage. [`LeoModel`] implements exactly that shape
//! as a pure function of virtual time, which buys two properties the
//! conformance suite demands for free: samples are reproducible under
//! the same seed, and non-monotone time queries (clock jumps, replays,
//! `u64::MAX`) can never corrupt internal state — only the
//! [`handoffs`](ChannelModel::handoffs) counter is stateful, and it is
//! a monotone max over observed pass indices.

use crate::model::{ChannelModel, LinkConditions};
use crate::signal::SignalInfo;
use netsim::{SimDuration, SimRng, SimTime};

/// Orbital/link parameters of a [`LeoModel`].
#[derive(Debug, Clone, Copy)]
pub struct LeoConfig {
    /// Time between successive satellite handoffs (one visibility
    /// pass). Starlink-like constellations see ~2–4 min; the default
    /// keeps several passes inside a short validation run.
    pub pass: SimDuration,
    /// Handoff outage at the start of every pass after the first:
    /// loss = 1.0 while the terminal re-acquires.
    pub outage: SimDuration,
    /// One-way delay with the satellite at zenith (closest).
    pub delay_zenith: SimDuration,
    /// One-way delay with the satellite at the horizon (farthest,
    /// start/end of the pass).
    pub delay_horizon: SimDuration,
    /// Nominal link bandwidth at zenith, b/s.
    pub bw_bps: u64,
    /// Residual loss probability outside outage windows.
    pub loss: f64,
}

impl Default for LeoConfig {
    fn default() -> Self {
        LeoConfig {
            pass: SimDuration::from_secs(95),
            outage: SimDuration::from_millis(250),
            delay_zenith: SimDuration::from_millis(4),
            delay_horizon: SimDuration::from_millis(13),
            bw_bps: 20_000_000,
            loss: 0.003,
        }
    }
}

/// SplitMix64: cheap stateless per-pass jitter source. Pure in the
/// pass index, so clock jumps land on identical per-pass conditions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic LEO pass schedule as a [`ChannelModel`].
pub struct LeoModel {
    name: String,
    cfg: LeoConfig,
    duration: SimDuration,
    /// Per-realization phase offset into the pass schedule (drawn from
    /// the trial RNG so fleet clients are staggered across the orbit).
    phase_ns: u64,
    /// Per-realization jitter salt for the per-pass delay steps.
    salt: u64,
    /// Highest pass index observed — the handoff counter. A max, so
    /// backwards clock jumps never decrease it and repeated queries
    /// never double-count.
    max_pass: u64,
}

impl LeoModel {
    /// Build a realization of the schedule. The trial RNG supplies the
    /// orbital phase and the per-pass jitter salt; two models built
    /// with identically-seeded RNGs are byte-identical.
    pub fn new(cfg: LeoConfig, duration: SimDuration, trial_rng: &mut SimRng) -> Self {
        assert!(cfg.pass.as_nanos() > 0, "pass period must be positive");
        let phase_ns = trial_rng.u64() % cfg.pass.as_nanos();
        LeoModel {
            name: "leo".to_string(),
            cfg,
            duration,
            phase_ns,
            salt: trial_rng.u64(),
            max_pass: 0,
        }
    }

    /// Pass index and fraction-through-pass at `now`. Pure.
    fn locate(&self, now: SimTime) -> (u64, f64, u64) {
        let pass_ns = self.cfg.pass.as_nanos().max(1);
        // Wrapping: the phase shift only matters modulo the period.
        let t = now.as_nanos().wrapping_add(self.phase_ns);
        let idx = t / pass_ns;
        let off = t % pass_ns;
        (idx, off as f64 / pass_ns as f64, off)
    }

    /// The configured schedule.
    pub fn config(&self) -> &LeoConfig {
        &self.cfg
    }
}

impl ChannelModel for LeoModel {
    fn sample(&mut self, now: SimTime, _rng: &mut SimRng) -> LinkConditions {
        let (idx, x, off_ns) = self.locate(now);
        self.max_pass = self.max_pass.max(idx);

        // Elevation proxy: 0 at zenith (mid-pass), 1 at the horizon.
        let u = (2.0 * x - 1.0).abs();
        // Per-pass delay step: each satellite's geometry differs a
        // little, so the whole pass rides a stable ±8% multiplier.
        let jitter = 0.92 + 0.16 * (mix64(idx ^ self.salt) as f64 / u64::MAX as f64);
        let z = self.cfg.delay_zenith.as_secs_f64();
        let h = self.cfg.delay_horizon.as_secs_f64();
        let delay_s = (z + (h - z) * u * u) * jitter;

        // Handoff outage at the start of every pass after the first.
        let in_outage = idx > 0 && off_ns < self.cfg.outage.as_nanos();
        let loss = if in_outage { 1.0 } else { self.cfg.loss };
        // Throughput degrades toward the horizon (longer slant range,
        // lower MODCOD).
        let bw = (self.cfg.bw_bps as f64 * (1.0 - 0.45 * u * u)) as u64;
        let signal = 6.0 + 18.0 * (1.0 - u);

        LinkConditions {
            latency: SimDuration::from_secs_f64(delay_s),
            bandwidth_bps: bw.max(1000),
            loss,
            signal: SignalInfo::from_level(signal),
        }
    }

    fn duration(&self) -> SimDuration {
        self.duration
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn handoffs(&self) -> u64 {
        self.max_pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> LeoModel {
        let mut rng = SimRng::seed_from_u64(seed);
        LeoModel::new(LeoConfig::default(), SimDuration::from_secs(300), &mut rng)
    }

    #[test]
    fn handoff_count_matches_observed_outage_onsets() {
        let mut m = model(11);
        let mut rng = SimRng::seed_from_u64(1);
        // Sample a monotone grid finer than the outage window and count
        // loss=1.0 onsets; every pass boundary inside the run must show
        // up as exactly one outage, and the counter must agree.
        let step_ns = m.cfg.outage.as_nanos() / 3;
        let mut onsets = 0u64;
        let mut in_outage = false;
        let first_pass = m.locate(SimTime::ZERO).0;
        for i in 0..(300_000_000_000u64 / step_ns) {
            let c = m.sample(SimTime::from_nanos(i * step_ns), &mut rng);
            let outage = c.loss >= 1.0;
            if outage && !in_outage {
                onsets += 1;
            }
            in_outage = outage;
        }
        assert!(onsets >= 2, "run should cross several passes: {onsets}");
        assert_eq!(m.handoffs() - first_pass, onsets, "counter vs onsets");
    }

    #[test]
    fn delay_is_longest_at_pass_edges() {
        let mut m = model(3);
        let mut rng = SimRng::seed_from_u64(2);
        let pass_ns = m.cfg.pass.as_nanos();
        // Find the start of pass 1 in un-shifted time.
        let start = pass_ns - m.phase_ns % pass_ns;
        let edge = m.sample(
            SimTime::from_nanos(start + m.cfg.outage.as_nanos() * 2),
            &mut rng,
        );
        let zenith = m.sample(SimTime::from_nanos(start + pass_ns / 2), &mut rng);
        assert!(edge.latency > zenith.latency, "{edge:?} vs {zenith:?}");
        assert!(edge.bandwidth_bps < zenith.bandwidth_bps);
        assert!(edge.signal.level < zenith.signal.level);
    }

    #[test]
    fn clock_jumps_cannot_decrease_handoffs_or_panic() {
        let mut m = model(5);
        let mut rng = SimRng::seed_from_u64(3);
        let _ = m.sample(SimTime::from_secs(500), &mut rng);
        let high = m.handoffs();
        let _ = m.sample(SimTime::from_secs(1), &mut rng); // backwards
        assert_eq!(m.handoffs(), high);
        let _ = m.sample(SimTime::from_nanos(u64::MAX), &mut rng);
        assert!(m.handoffs() >= high);
        let _ = m.sample(SimTime::ZERO, &mut rng);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = model(9);
        let mut b = model(9);
        let mut ra = SimRng::seed_from_u64(4);
        let mut rb = SimRng::seed_from_u64(4);
        for i in 0..500u64 {
            let t = SimTime::from_millis(i * 333);
            let ca = a.sample(t, &mut ra);
            let cb = b.sample(t, &mut rb);
            assert_eq!(ca.latency, cb.latency);
            assert_eq!(ca.bandwidth_bps, cb.bandwidth_bps);
            assert!((ca.loss - cb.loss).abs() < f64::EPSILON);
        }
        let mut c = model(10);
        let mut rc = SimRng::seed_from_u64(4);
        let t = SimTime::from_secs(40);
        assert_ne!(
            c.sample(t, &mut rc).latency,
            a.sample(t, &mut ra).latency,
            "different seeds should land on different phases"
        );
    }
}
