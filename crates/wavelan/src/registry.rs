//! The channel-model plugin registry and scenario-pack format.
//!
//! The paper hard-wires one radio (the WaveLAN) as *the* channel; this
//! module promotes [`ChannelModel`] into a plugin layer so the same
//! collect → distill → modulate methodology runs against radios the
//! paper never saw. A [`ModelSpec`] names a registered model *family*
//! plus its parameters; a [`ScenarioPack`] (TOML or JSON file, the
//! `--scenario <pack.toml>` CLI form) bundles one or more weighted
//! specs so a fleet can mix radios across its clients. The
//! [`Registry`] maps family names to factory functions — models are
//! constructed by name + params instead of compile-time wiring, and
//! identified everywhere (manifests, telemetry, conformance tests) by
//! their stable name strings.
//!
//! Five families are built in: `constant`, `piecewise` (the paper's
//! checkpoint scenarios), `physical` (WavePoint propagation + handoff),
//! `errant` (cellular operator/RAT profiles), and `leo` (satellite
//! pass schedule).

use crate::errant::{self, ErrantModel, Rat};
use crate::leo::{LeoConfig, LeoModel};
use crate::mobility::{Position, WalkBuilder};
use crate::model::{ChannelModel, ConstantModel, LinkConditions, PiecewiseModel};
use crate::scenario::Scenario;
use crate::signal::SignalInfo;
use crate::wavepoint::{PhysicalModel, WavePoint};
use netsim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// One parameter value: scenario packs only need numbers and strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A numeric parameter (`pass_secs = 45`).
    Num(f64),
    /// A string parameter (`operator = "op2"`).
    Str(String),
}

/// Ordered `key → value` parameters of a [`ModelSpec`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelParams {
    entries: Vec<(String, ParamValue)>,
}

impl ModelParams {
    /// An empty parameter set (every family must accept one: all
    /// parameters have defaults except where documented).
    pub fn new() -> Self {
        ModelParams::default()
    }

    /// Set (or replace) a numeric parameter.
    pub fn set_num(&mut self, key: &str, v: f64) {
        self.set(key, ParamValue::Num(v));
    }

    /// Set (or replace) a string parameter.
    pub fn set_str(&mut self, key: &str, v: &str) {
        self.set(key, ParamValue::Str(v.to_string()));
    }

    fn set(&mut self, key: &str, v: ParamValue) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = v,
            None => self.entries.push((key.to_string(), v)),
        }
    }

    /// Numeric value of `key`, if present and numeric.
    pub fn num(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(ParamValue::Num(v)) => Ok(Some(*v)),
            Some(ParamValue::Str(s)) => {
                Err(format!("param '{key}': expected a number, got \"{s}\""))
            }
        }
    }

    /// String value of `key`, if present and a string.
    pub fn str_value(&self, key: &str) -> Result<Option<&str>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(ParamValue::Str(s)) => Ok(Some(s.as_str())),
            Some(ParamValue::Num(v)) => Err(format!("param '{key}': expected a string, got {v}")),
        }
    }

    /// Numeric value with a default, validated finite.
    pub fn num_or(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = self.num(key)?.unwrap_or(default);
        if !v.is_finite() {
            return Err(format!("param '{key}': must be finite, got {v}"));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Declared keys, in declaration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Canonical `key=value` rendering, keys sorted — the stable params
    /// string recorded in manifests and telemetry.
    pub fn canonical(&self) -> String {
        let mut pairs: Vec<&(String, ParamValue)> = self.entries.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (k, v) in pairs {
            if !out.is_empty() {
                out.push(' ');
            }
            match v {
                ParamValue::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                    let _ = write!(out, "{k}={}", *n as i64);
                }
                ParamValue::Num(n) => {
                    let _ = write!(out, "{k}={n}");
                }
                ParamValue::Str(s) => {
                    let _ = write!(out, "{k}={s}");
                }
            }
        }
        out
    }
}

/// A named model family plus parameters — everything needed to build a
/// [`ChannelModel`] through the [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Registered family name ("constant", "piecewise", "physical",
    /// "errant", "leo").
    pub family: String,
    /// Family parameters; missing keys take family defaults.
    pub params: ModelParams,
}

impl ModelSpec {
    /// A spec with no parameters (family defaults).
    pub fn family(name: &str) -> Self {
        ModelSpec {
            family: name.to_string(),
            params: ModelParams::new(),
        }
    }

    /// `(family, canonical-params)` — the identification recorded in
    /// run manifests.
    pub fn info(&self) -> (String, String) {
        (self.family.clone(), self.params.canonical())
    }
}

/// A family's constructor: validated params + run duration + the
/// per-client RNG stream → a boxed model (or a structured error).
type BuildFn = fn(&ModelParams, SimDuration, &mut SimRng) -> Result<Box<dyn ChannelModel>, String>;

/// One registered model family.
pub struct Family {
    /// Stable family name (the `family =` key of pack entries).
    pub name: &'static str,
    /// Parameter keys this family accepts.
    pub param_keys: &'static [&'static str],
    /// Whether the family models discrete station/satellite handoffs
    /// (so its `handoffs()` counter can be nonzero).
    pub has_handoffs: bool,
    /// One-line description for `tracemod scenarios`.
    pub describe: &'static str,
    build: BuildFn,
}

/// The model-family registry. Use [`Registry::builtin`] for the
/// process-wide instance holding the five built-in families.
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// The built-in registry (constructed once per process).
    pub fn builtin() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(|| Registry {
            families: vec![
                Family {
                    name: "constant",
                    param_keys: &["latency_ms", "bw_kbps", "loss", "signal"],
                    has_handoffs: false,
                    describe: "fixed conditions (defaults: the typical WaveLAN channel)",
                    build: build_constant,
                },
                Family {
                    name: "piecewise",
                    param_keys: &["scenario"],
                    has_handoffs: false,
                    describe: "checkpoint-interpolated WaveLAN scenario (requires scenario=<name>)",
                    build: build_piecewise,
                },
                Family {
                    name: "physical",
                    param_keys: &["stations", "spacing_m"],
                    has_handoffs: true,
                    describe: "WavePoint propagation + roaming along a straight walk",
                    build: build_physical,
                },
                Family {
                    name: "errant",
                    param_keys: &["operator", "rat"],
                    has_handoffs: false,
                    describe: "cellular operator/RAT profile with per-client session draws",
                    build: build_errant,
                },
                Family {
                    name: "leo",
                    param_keys: &[
                        "pass_secs",
                        "outage_ms",
                        "delay_zenith_ms",
                        "delay_horizon_ms",
                        "bw_mbps",
                        "loss",
                    ],
                    has_handoffs: true,
                    describe: "satellite pass schedule: per-pass delay steps + handoff outages",
                    build: build_leo,
                },
            ],
        })
    }

    /// The registered families.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// Look a family up by name.
    pub fn get(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Build a model from a spec. `duration` is the run duration the
    /// model should span; `rng` supplies the per-trial/per-client
    /// realization. Errors are structured strings naming the offending
    /// family/param.
    pub fn build(
        &self,
        spec: &ModelSpec,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> Result<Box<dyn ChannelModel>, String> {
        let family = self.get(&spec.family).ok_or_else(|| {
            let known: Vec<&str> = self.families.iter().map(|f| f.name).collect();
            format!(
                "unknown model family '{}' (registered: {})",
                spec.family,
                known.join(", ")
            )
        })?;
        for key in spec.params.keys() {
            if !family.param_keys.contains(&key) {
                return Err(format!(
                    "model family '{}': unknown param '{}' (accepts: {})",
                    family.name,
                    key,
                    family.param_keys.join(", ")
                ));
            }
        }
        if duration.as_nanos() == 0 {
            return Err(format!(
                "model family '{}': duration must be positive",
                family.name
            ));
        }
        (family.build)(&spec.params, duration, rng)
            .map_err(|e| format!("model family '{}': {e}", family.name))
    }
}

fn build_constant(
    p: &ModelParams,
    duration: SimDuration,
    _rng: &mut SimRng,
) -> Result<Box<dyn ChannelModel>, String> {
    let latency_ms = p.num_or("latency_ms", 2.0)?;
    let bw_kbps = p.num_or("bw_kbps", 1500.0)?;
    let loss = p.num_or("loss", 0.02)?;
    let signal = p.num_or("signal", 20.0)?;
    if latency_ms < 0.0 {
        return Err(format!("latency_ms must be >= 0, got {latency_ms}"));
    }
    if bw_kbps <= 0.0 {
        return Err(format!("bw_kbps must be > 0, got {bw_kbps}"));
    }
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("loss must be in [0, 1], got {loss}"));
    }
    Ok(Box::new(ConstantModel::new(
        LinkConditions {
            latency: SimDuration::from_secs_f64(latency_ms / 1e3),
            bandwidth_bps: (bw_kbps * 1000.0) as u64,
            loss,
            signal: SignalInfo::from_level(signal.max(0.0)),
        },
        duration,
    )))
}

fn build_piecewise(
    p: &ModelParams,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Result<Box<dyn ChannelModel>, String> {
    let name = p
        .str_value("scenario")?
        .ok_or_else(|| "missing required param 'scenario'".to_string())?;
    let sc = Scenario::by_name(name).ok_or_else(|| {
        format!(
            "unknown scenario '{name}' (known: {})",
            Scenario::all()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    Ok(Box::new(PiecewiseModel::new(
        sc.name,
        sc.checkpoints,
        duration,
        rng,
    )))
}

fn build_physical(
    p: &ModelParams,
    duration: SimDuration,
    _rng: &mut SimRng,
) -> Result<Box<dyn ChannelModel>, String> {
    let stations = p.num_or("stations", 3.0)?;
    let spacing = p.num_or("spacing_m", 100.0)?;
    if stations < 1.0 || stations.fract() != 0.0 || stations > 64.0 {
        return Err(format!(
            "stations must be an integer in 1..=64, got {stations}"
        ));
    }
    if spacing <= 0.0 {
        return Err(format!("spacing_m must be > 0, got {spacing}"));
    }
    let n = stations as usize;
    let total = spacing * (n.max(2) - 1) as f64;
    // Walk the whole corridor over the run: speed derived from the
    // duration so the traversal spans it exactly.
    let speed = (total / duration.as_secs_f64()).max(0.01);
    let path = WalkBuilder::start_at(Position::new(0.0, 0.0))
        .walk_to(Position::new(total, 0.0), speed)
        .build();
    let points = (0..n)
        .map(|i| WavePoint::at(Position::new(spacing * i as f64, 5.0)))
        .collect();
    Ok(Box::new(PhysicalModel::new("physical", path, points)))
}

fn build_errant(
    p: &ModelParams,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Result<Box<dyn ChannelModel>, String> {
    let operator = p.str_value("operator")?.unwrap_or("op1");
    let rat_tok = p.str_value("rat")?.unwrap_or("4g");
    let rat = Rat::parse(rat_tok)
        .ok_or_else(|| format!("rat must be \"3g\" or \"4g\", got \"{rat_tok}\""))?;
    let profile = errant::profile(operator, rat).ok_or_else(|| {
        format!(
            "unknown operator \"{operator}\" (known: {})",
            errant::operators().join(", ")
        )
    })?;
    Ok(Box::new(ErrantModel::new(*profile, duration, rng)))
}

fn build_leo(
    p: &ModelParams,
    duration: SimDuration,
    rng: &mut SimRng,
) -> Result<Box<dyn ChannelModel>, String> {
    let d = LeoConfig::default();
    let pass_secs = p.num_or("pass_secs", d.pass.as_secs_f64())?;
    let outage_ms = p.num_or("outage_ms", d.outage.as_millis_f64())?;
    let zenith_ms = p.num_or("delay_zenith_ms", d.delay_zenith.as_millis_f64())?;
    let horizon_ms = p.num_or("delay_horizon_ms", d.delay_horizon.as_millis_f64())?;
    let bw_mbps = p.num_or("bw_mbps", d.bw_bps as f64 / 1e6)?;
    let loss = p.num_or("loss", d.loss)?;
    if pass_secs <= 0.0 {
        return Err(format!("pass_secs must be > 0, got {pass_secs}"));
    }
    if outage_ms < 0.0 || outage_ms / 1e3 >= pass_secs {
        return Err(format!(
            "outage_ms must be in [0, pass) — got {outage_ms} against pass {pass_secs}s"
        ));
    }
    if zenith_ms <= 0.0 || horizon_ms < zenith_ms {
        return Err(format!(
            "need 0 < delay_zenith_ms <= delay_horizon_ms, got {zenith_ms}/{horizon_ms}"
        ));
    }
    if bw_mbps <= 0.0 {
        return Err(format!("bw_mbps must be > 0, got {bw_mbps}"));
    }
    if !(0.0..=1.0).contains(&loss) {
        return Err(format!("loss must be in [0, 1], got {loss}"));
    }
    let cfg = LeoConfig {
        pass: SimDuration::from_secs_f64(pass_secs),
        outage: SimDuration::from_secs_f64(outage_ms / 1e3),
        delay_zenith: SimDuration::from_secs_f64(zenith_ms / 1e3),
        delay_horizon: SimDuration::from_secs_f64(horizon_ms / 1e3),
        bw_bps: (bw_mbps * 1e6) as u64,
        loss,
    };
    Ok(Box::new(LeoModel::new(cfg, duration, rng)))
}

/// One weighted entry of a [`ScenarioPack`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackEntry {
    /// What to build.
    pub spec: ModelSpec,
    /// Relative share of fleet clients assigned this model (≥ 1).
    pub share: u32,
}

/// A scenario pack: a named, weighted mix of model specs plus the run
/// duration — the unit of configuration behind `--scenario <pack>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPack {
    /// Pack name (becomes the scenario name in manifests/reports).
    pub name: String,
    /// Run duration in seconds.
    pub duration_secs: u64,
    /// The weighted model mix, in declaration order.
    pub entries: Vec<PackEntry>,
}

/// JSON mirror of [`ScenarioPack`]: params are `"key=value"` strings
/// (values parse as numbers when they can, strings otherwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PackJson {
    name: String,
    duration_secs: u64,
    models: Vec<PackModelJson>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PackModelJson {
    family: String,
    #[serde(default)]
    share: Option<u32>,
    #[serde(default)]
    params: Vec<String>,
}

impl ScenarioPack {
    /// Parse the TOML subset: top-level `name`/`duration_secs`, then
    /// `[[model]]` tables with `family`, optional `share`, and free
    /// `key = value` parameters. `#` comments and blank lines are
    /// ignored. Syntax only — call [`validate`](Self::validate) next.
    pub fn from_toml(s: &str) -> Result<ScenarioPack, String> {
        let mut name = String::new();
        let mut duration_secs: Option<u64> = None;
        let mut entries: Vec<PackEntry> = Vec::new();
        for (idx, raw) in s.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            let at = |msg: String| format!("pack line {}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            if line == "[[model]]" {
                entries.push(PackEntry {
                    spec: ModelSpec::family(""),
                    share: 1,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(at(format!(
                    "unsupported table '{line}' (only [[model]] tables)"
                )));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected key = value, got '{line}'")))?;
            let (key, value) = (key.trim(), value.trim());
            match entries.last_mut() {
                None => match key {
                    "name" => name = toml_str(key, value).map_err(at)?,
                    "duration_secs" => {
                        let n = toml_num(key, value).map_err(at)?;
                        if n < 1.0 || n.fract() != 0.0 || n > 1e9 {
                            return Err(at(format!(
                                "'duration_secs' must be a positive integer, got '{value}'"
                            )));
                        }
                        duration_secs = Some(n as u64);
                    }
                    other => {
                        return Err(at(format!(
                            "unknown top-level key '{other}' (expected name, duration_secs, or [[model]] tables)"
                        )))
                    }
                },
                Some(entry) => match key {
                    "family" => entry.spec.family = toml_str(key, value).map_err(at)?,
                    "share" => {
                        let n = toml_num(key, value).map_err(at)?;
                        if n < 1.0 || n.fract() != 0.0 || n > 1e6 {
                            return Err(at(format!(
                                "'share' must be a positive integer, got '{value}'"
                            )));
                        }
                        entry.share = n as u32;
                    }
                    param => {
                        if value.starts_with('"') {
                            entry
                                .spec
                                .params
                                .set_str(param, &toml_str(param, value).map_err(at)?);
                        } else {
                            entry
                                .spec
                                .params
                                .set_num(param, toml_num(param, value).map_err(at)?);
                        }
                    }
                },
            }
        }
        let duration_secs =
            duration_secs.ok_or_else(|| "pack: missing 'duration_secs'".to_string())?;
        if name.is_empty() {
            return Err("pack: missing 'name'".to_string());
        }
        Ok(ScenarioPack {
            name,
            duration_secs,
            entries,
        })
    }

    /// Parse the JSON form (see the DESIGN.md §16 schema). Syntax only
    /// — call [`validate`](Self::validate) next.
    pub fn from_json(s: &str) -> Result<ScenarioPack, String> {
        let pj: PackJson = serde_json::from_str(s).map_err(|e| format!("pack: {e}"))?;
        if pj.duration_secs == 0 || pj.duration_secs > 1_000_000_000 {
            return Err("pack: 'duration_secs' must be a positive integer".to_string());
        }
        if pj.name.is_empty() {
            return Err("pack: missing 'name'".to_string());
        }
        let mut entries = Vec::new();
        for m in pj.models {
            let share = m.share.unwrap_or(1);
            if share == 0 || share > 1_000_000 {
                return Err(format!(
                    "pack: model '{}': 'share' must be a positive integer",
                    m.family
                ));
            }
            let mut spec = ModelSpec::family(&m.family);
            for p in &m.params {
                let (k, v) = p.split_once('=').ok_or_else(|| {
                    format!("pack: model '{}': param '{p}' is not key=value", m.family)
                })?;
                let (k, v) = (k.trim(), v.trim());
                if k.is_empty() {
                    return Err(format!(
                        "pack: model '{}': param '{p}' has an empty key",
                        m.family
                    ));
                }
                match v.parse::<f64>() {
                    Ok(n) => spec.params.set_num(k, n),
                    Err(_) => spec.params.set_str(k, v),
                }
            }
            entries.push(PackEntry { spec, share });
        }
        Ok(ScenarioPack {
            name: pj.name,
            duration_secs: pj.duration_secs,
            entries,
        })
    }

    /// Semantic validation: at least one model, every spec must build
    /// against `registry` (with a throwaway RNG), shares sane. After
    /// this passes, later [`Registry::build`] calls on the pack's specs
    /// cannot fail.
    pub fn validate(&self, registry: &Registry) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err(format!("pack '{}': no [[model]] entries", self.name));
        }
        if self.duration_secs == 0 {
            return Err(format!("pack '{}': duration must be positive", self.name));
        }
        for e in &self.entries {
            if e.share == 0 {
                return Err(format!("pack '{}': share must be >= 1", self.name));
            }
            let mut probe = SimRng::seed_from_u64(0);
            registry
                .build(&e.spec, self.duration(), &mut probe)
                .map_err(|err| format!("pack '{}': {err}", self.name))?;
        }
        Ok(())
    }

    /// The run duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.duration_secs)
    }

    /// The spec governing fleet client `client` — cumulative shares
    /// over `client % total_share`, a pure function of the client index
    /// so the assignment is shard-invariant.
    pub fn spec_for_client(&self, client: u32) -> &ModelSpec {
        let total: u64 = self.entries.iter().map(|e| e.share as u64).sum();
        let mut slot = client as u64 % total.max(1);
        for e in &self.entries {
            if slot < e.share as u64 {
                return &e.spec;
            }
            slot -= e.share as u64;
        }
        &self.entries[0].spec
    }

    /// A [`Scenario`] stub carrying this pack, so every single-channel
    /// code path (collect/live/figures) runs a pack transparently: the
    /// scenario's `model()` builds the pack's *first* entry through the
    /// registry; fleets consult [`spec_for_client`](Self::spec_for_client)
    /// for the full mix.
    pub fn scenario(&self) -> Scenario {
        let mut sc = Scenario::chatterbox();
        sc.name = Box::leak(self.name.clone().into_boxed_str());
        sc.duration = self.duration();
        sc.cross = None;
        sc.stationary = false;
        sc.loss_asym_up = 1.0;
        sc.model_spec = Some(self.entries[0].spec.clone());
        sc
    }
}

fn toml_str(key: &str, v: &str) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected a quoted string for '{key}', got '{v}'"))
    }
}

fn toml_num(key: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|_| format!("expected a number for '{key}', got '{v}'"))
}

/// Drop a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Load a pack from file contents, picking the parser from the path
/// extension (`.toml` unless the path ends in `.json`), then validate
/// against the built-in registry.
pub fn load_pack(path: &str, contents: &str) -> Result<ScenarioPack, String> {
    let pack = if path.ends_with(".json") {
        ScenarioPack::from_json(contents)?
    } else {
        ScenarioPack::from_toml(contents)?
    };
    pack.validate(Registry::builtin())?;
    Ok(pack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    const LEO_TOML: &str = r#"
# a LEO mix with a cellular fallback share
name = "leo-mix"
duration_secs = 120

[[model]]
family = "leo"
share = 3
pass_secs = 45
outage_ms = 250

[[model]]
family = "errant"
share = 1
operator = "op2"
rat = "4g"
"#;

    #[test]
    fn toml_pack_round_trip() {
        let pack = ScenarioPack::from_toml(LEO_TOML).unwrap();
        assert_eq!(pack.name, "leo-mix");
        assert_eq!(pack.duration_secs, 120);
        assert_eq!(pack.entries.len(), 2);
        assert_eq!(pack.entries[0].spec.family, "leo");
        assert_eq!(pack.entries[0].share, 3);
        assert_eq!(
            pack.entries[0].spec.params.num("pass_secs").unwrap(),
            Some(45.0)
        );
        assert_eq!(
            pack.entries[1].spec.params.str_value("operator").unwrap(),
            Some("op2")
        );
        pack.validate(Registry::builtin()).unwrap();
    }

    #[test]
    fn json_pack_parses() {
        let json = r#"{"name":"j","duration_secs":60,
            "models":[{"family":"errant","share":2,"params":["operator=op3","rat=3g"]},
                      {"family":"constant","params":["bw_kbps=900"]}]}"#;
        let pack = ScenarioPack::from_json(json).unwrap();
        pack.validate(Registry::builtin()).unwrap();
        assert_eq!(
            pack.entries[0].spec.params.str_value("rat").unwrap(),
            Some("3g")
        );
        assert_eq!(
            pack.entries[1].spec.params.num("bw_kbps").unwrap(),
            Some(900.0)
        );
    }

    #[test]
    fn client_mix_follows_shares_and_is_pure() {
        let pack = ScenarioPack::from_toml(LEO_TOML).unwrap();
        let fam = |c: u32| pack.spec_for_client(c).family.as_str();
        // shares 3:1 → clients 0..3 leo, 3 errant, repeating.
        assert_eq!(fam(0), "leo");
        assert_eq!(fam(2), "leo");
        assert_eq!(fam(3), "errant");
        assert_eq!(fam(4), "leo");
        assert_eq!(fam(7), "errant");
        let leo_count = (0..1000).filter(|&c| fam(c) == "leo").count();
        assert_eq!(leo_count, 750);
    }

    #[test]
    fn registry_builds_all_families_by_default() {
        let reg = Registry::builtin();
        assert!(reg.families().len() >= 5);
        for fam in reg.families() {
            let mut spec = ModelSpec::family(fam.name);
            if fam.name == "piecewise" {
                spec.params.set_str("scenario", "porter");
            }
            let mut rng = SimRng::seed_from_u64(1);
            let mut m = reg
                .build(&spec, SimDuration::from_secs(60), &mut rng)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name));
            let mut srng = SimRng::seed_from_u64(2);
            let c = m.sample(SimTime::from_secs(10), &mut srng);
            assert!(c.bandwidth_bps > 0, "{}", fam.name);
        }
    }

    #[test]
    fn structured_errors_name_the_problem() {
        let reg = Registry::builtin();
        let mut rng = SimRng::seed_from_u64(1);
        let dur = SimDuration::from_secs(60);

        let err = reg
            .build(&ModelSpec::family("nonesuch"), dur, &mut rng)
            .err()
            .unwrap();
        assert!(err.contains("unknown model family 'nonesuch'"), "{err}");

        let err = reg
            .build(&ModelSpec::family("piecewise"), dur, &mut rng)
            .err()
            .unwrap();
        assert!(err.contains("missing required param 'scenario'"), "{err}");

        let mut spec = ModelSpec::family("leo");
        spec.params.set_num("bw_mbps", -4.0);
        let err = reg.build(&spec, dur, &mut rng).err().unwrap();
        assert!(err.contains("bw_mbps must be > 0"), "{err}");

        let mut spec = ModelSpec::family("constant");
        spec.params.set_num("frobnicate", 1.0);
        let err = reg.build(&spec, dur, &mut rng).err().unwrap();
        assert!(err.contains("unknown param 'frobnicate'"), "{err}");
    }

    #[test]
    fn pack_scenario_stub_builds_first_entry() {
        let pack = ScenarioPack::from_toml(LEO_TOML).unwrap();
        let sc = pack.scenario();
        assert_eq!(sc.name, "leo-mix");
        assert_eq!(sc.duration.as_secs_f64() as u64, 120);
        let mut rng = SimRng::seed_from_u64(5);
        let mut m = sc.model(&mut rng);
        assert_eq!(m.name(), "leo");
        let mut srng = SimRng::seed_from_u64(6);
        let _ = m.sample(SimTime::from_secs(1), &mut srng);
    }

    #[test]
    fn canonical_params_are_sorted_and_stable() {
        let mut p = ModelParams::new();
        p.set_num("pass_secs", 45.0);
        p.set_str("operator", "op1");
        p.set_num("loss", 0.25);
        assert_eq!(p.canonical(), "loss=0.25 operator=op1 pass_secs=45");
    }
}
