//! Scenario-pack parser property tests: arbitrary and
//! structurally-malformed TOML/JSON inputs must never panic the
//! parsers, and the semantic failure modes (unknown family, missing
//! params, out-of-range rates) must surface as structured errors.

use proptest::collection;
use proptest::prelude::*;
use wavelan::registry::{Registry, ScenarioPack};

/// Raw bytes → lossy string: hostile line soup for both parsers.
fn arb_garbage() -> impl Strategy<Value = String> {
    collection::vec(any::<u8>(), 0..600).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// TOML-shaped lines assembled from plausible fragments, so the fuzz
/// reaches deep into the key/value handling instead of dying on line 1.
fn arb_tomlish() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        Just("[[model]]".to_string()),
        Just("[model]".to_string()),
        Just("name = \"fuzz\"".to_string()),
        Just("name = fuzz".to_string()),
        Just("duration_secs = 60".to_string()),
        Just("duration_secs = -3".to_string()),
        Just("duration_secs = 1e99".to_string()),
        Just("family = \"leo\"".to_string()),
        Just("family = \"nonesuch\"".to_string()),
        Just("share = 0".to_string()),
        Just("share = 2.5".to_string()),
        Just("pass_secs = 45".to_string()),
        Just("pass_secs = nan".to_string()),
        Just("operator = \"op1\"".to_string()),
        Just("rat = \"5g\"".to_string()),
        Just("loss = 7.0".to_string()),
        Just("bw_mbps = -1".to_string()),
        Just("= = =".to_string()),
        Just("#comment \" with quote".to_string()),
        Just(String::new()),
        (any::<u32>(), any::<f64>()).prop_map(|(k, v)| format!("k{k} = {v}")),
        collection::vec(any::<u8>(), 0..40)
            .prop_map(|b| String::from_utf8_lossy(&b).replace('\n', " ")),
    ];
    collection::vec(line, 0..25).prop_map(|ls| ls.join("\n"))
}

/// JSON-shaped packs with hostile field values.
fn arb_jsonish() -> impl Strategy<Value = String> {
    let param = prop_oneof![
        Just("\"pass_secs=45\"".to_string()),
        Just("\"loss=9\"".to_string()),
        Just("\"=\"".to_string()),
        Just("\"noequals\"".to_string()),
        Just("\"operator=op9\"".to_string()),
        Just("\"rat=4g\"".to_string()),
    ];
    let family = prop_oneof![
        Just("\"leo\"".to_string()),
        Just("\"errant\"".to_string()),
        Just("\"bogus\"".to_string()),
        Just("\"\"".to_string()),
    ];
    (
        family,
        any::<u32>(),
        collection::vec(param, 0..4),
        0u64..200,
    )
        .prop_map(|(fam, share, params, dur)| {
            format!(
                "{{\"name\":\"f\",\"duration_secs\":{dur},\"models\":[{{\"family\":{fam},\"share\":{share},\"params\":[{}]}}]}}",
                params.join(",")
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn raw_garbage_never_panics(s in arb_garbage()) {
        let _ = ScenarioPack::from_toml(&s).map(|p| p.validate(Registry::builtin()));
        let _ = ScenarioPack::from_json(&s).map(|p| p.validate(Registry::builtin()));
    }

    #[test]
    fn tomlish_inputs_never_panic(s in arb_tomlish()) {
        if let Ok(pack) = ScenarioPack::from_toml(&s) {
            // Whatever parsed must either validate or produce an Err —
            // never a panic; and a validated pack must be buildable.
            if pack.validate(Registry::builtin()).is_ok() {
                let mut rng = netsim::SimRng::seed_from_u64(1);
                for e in &pack.entries {
                    prop_assert!(Registry::builtin()
                        .build(&e.spec, pack.duration(), &mut rng)
                        .is_ok());
                }
            }
        }
    }

    #[test]
    fn jsonish_inputs_never_panic(s in arb_jsonish()) {
        if let Ok(pack) = ScenarioPack::from_json(&s) {
            let _ = pack.validate(Registry::builtin());
        }
    }
}

#[test]
fn unknown_family_is_a_structured_error() {
    let toml = "name = \"x\"\nduration_secs = 30\n\n[[model]]\nfamily = \"martian\"\n";
    let pack = ScenarioPack::from_toml(toml).unwrap();
    let err = pack.validate(Registry::builtin()).err().unwrap();
    assert!(err.contains("unknown model family 'martian'"), "{err}");
    assert!(err.contains("registered:"), "{err}");
}

#[test]
fn missing_required_param_is_a_structured_error() {
    let toml = "name = \"x\"\nduration_secs = 30\n\n[[model]]\nfamily = \"piecewise\"\n";
    let pack = ScenarioPack::from_toml(toml).unwrap();
    let err = pack.validate(Registry::builtin()).err().unwrap();
    assert!(err.contains("missing required param 'scenario'"), "{err}");
}

#[test]
fn out_of_range_rates_are_structured_errors() {
    for (param, needle) in [
        ("loss = 3.0", "loss must be in [0, 1]"),
        ("bw_mbps = 0", "bw_mbps must be > 0"),
        ("pass_secs = -10", "pass_secs must be > 0"),
        ("outage_ms = 999999", "outage_ms must be in [0, pass)"),
    ] {
        let toml =
            format!("name = \"x\"\nduration_secs = 30\n\n[[model]]\nfamily = \"leo\"\n{param}\n");
        let pack = ScenarioPack::from_toml(&toml).unwrap();
        let err = pack.validate(Registry::builtin()).err().unwrap();
        assert!(err.contains(needle), "{param}: {err}");
    }
}

#[test]
fn syntax_errors_carry_line_numbers() {
    let toml = "name = \"x\"\nduration_secs = 30\nwat\n";
    let err = ScenarioPack::from_toml(toml).err().unwrap();
    assert!(err.contains("line 3"), "{err}");

    let toml = "name = \"x\"\nduration_secs = 30\n[table]\n";
    let err = ScenarioPack::from_toml(toml).err().unwrap();
    assert!(err.contains("line 3") && err.contains("[[model]]"), "{err}");
}

#[test]
fn empty_pack_and_zero_share_rejected() {
    let pack = ScenarioPack::from_toml("name = \"x\"\nduration_secs = 9\n").unwrap();
    let err = pack.validate(Registry::builtin()).err().unwrap();
    assert!(err.contains("no [[model]] entries"), "{err}");

    let err = ScenarioPack::from_toml(
        "name = \"x\"\nduration_secs = 9\n\n[[model]]\nfamily = \"leo\"\nshare = 0\n",
    )
    .err()
    .unwrap();
    assert!(err.contains("'share' must be a positive integer"), "{err}");
}
