//! Cross-model conformance suite: the behavioural contract every
//! registered [`ChannelModel`] family must satisfy, run against each
//! family through the registry (so adding a family automatically puts
//! it under test).
//!
//! The contract:
//! * **Determinism** — two models built from identically-seeded RNGs
//!   produce bitwise-identical condition streams.
//! * **Sane conditions** — latencies are finite and non-negative, loss
//!   stays in [0, 1], bandwidth is positive, at every instant.
//! * **Total in time** — sample() never panics for *any* virtual-time
//!   query sequence: backwards jumps, repeats, and `u64::MAX`.
//! * **Honest handoff counter** — `handoffs()` is monotone
//!   non-decreasing, stays 0 for families without discrete handoffs,
//!   and for handoff families counts at least the observed full-outage
//!   onsets on a monotone scan.

use netsim::{SimDuration, SimRng, SimTime};
use wavelan::registry::{ModelSpec, Registry};
use wavelan::{ChannelModel, LinkConditions};

const RUN: SimDuration = SimDuration::from_secs(120);

/// Default-parameter specs for every registered family.
fn all_specs() -> Vec<ModelSpec> {
    let reg = Registry::builtin();
    assert!(
        reg.families().len() >= 5,
        "registry lost families: {}",
        reg.families().len()
    );
    reg.families()
        .iter()
        .map(|f| {
            let mut spec = ModelSpec::family(f.name);
            if f.name == "piecewise" {
                spec.params.set_str("scenario", "porter");
            }
            spec
        })
        .collect()
}

fn build(spec: &ModelSpec, seed: u64) -> Box<dyn ChannelModel> {
    let mut rng = SimRng::seed_from_u64(seed);
    Registry::builtin()
        .build(spec, RUN, &mut rng)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.family))
}

fn assert_sane(family: &str, t: SimTime, c: &LinkConditions) {
    let lat = c.latency.as_secs_f64();
    assert!(
        lat.is_finite() && lat >= 0.0,
        "{family}: bad latency {lat} at {t:?}"
    );
    assert!(
        (0.0..=1.0).contains(&c.loss),
        "{family}: loss {} at {t:?}",
        c.loss
    );
    assert!(c.bandwidth_bps > 0, "{family}: zero bandwidth at {t:?}");
    assert!(
        c.signal.level.is_finite() && c.signal.level >= 0.0,
        "{family}: bad signal {} at {t:?}",
        c.signal.level
    );
}

/// A hostile time sequence: monotone ramp, then backwards jumps,
/// repeats, far-future probes, and the u64::MAX edge.
fn hostile_times() -> Vec<SimTime> {
    let mut ts: Vec<SimTime> = (0..200u64).map(|i| SimTime::from_millis(i * 700)).collect();
    ts.extend([
        SimTime::from_secs(500),
        SimTime::from_secs(2),
        SimTime::from_secs(2),
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimTime::from_nanos(u64::MAX - 1),
        SimTime::from_secs(1),
        SimTime::from_nanos(u64::MAX),
        SimTime::ZERO,
    ]);
    ts
}

#[test]
fn same_seed_same_conditions() {
    for spec in all_specs() {
        let mut a = build(&spec, 42);
        let mut b = build(&spec, 42);
        let mut ra = SimRng::seed_from_u64(7);
        let mut rb = SimRng::seed_from_u64(7);
        for i in 0..400u64 {
            let t = SimTime::from_millis(i * 300);
            let ca = a.sample(t, &mut ra);
            let cb = b.sample(t, &mut rb);
            assert_eq!(
                ca.latency, cb.latency,
                "{}: latency diverged at {t:?}",
                spec.family
            );
            assert_eq!(
                ca.bandwidth_bps, cb.bandwidth_bps,
                "{}: bandwidth diverged at {t:?}",
                spec.family
            );
            assert!(
                ca.loss.to_bits() == cb.loss.to_bits(),
                "{}: loss diverged at {t:?}",
                spec.family
            );
            assert!(
                ca.signal.level.to_bits() == cb.signal.level.to_bits(),
                "{}: signal diverged at {t:?}",
                spec.family
            );
        }
        assert_eq!(a.handoffs(), b.handoffs(), "{}", spec.family);
    }
}

#[test]
fn conditions_are_sane_at_every_instant() {
    for spec in all_specs() {
        let mut m = build(&spec, 3);
        let mut rng = SimRng::seed_from_u64(4);
        for i in 0..1000u64 {
            let t = SimTime::from_millis(i * 130);
            let c = m.sample(t, &mut rng);
            assert_sane(&spec.family, t, &c);
        }
    }
}

#[test]
fn hostile_time_queries_never_panic() {
    for spec in all_specs() {
        let mut m = build(&spec, 9);
        let mut rng = SimRng::seed_from_u64(10);
        for t in hostile_times() {
            let c = m.sample(t, &mut rng);
            assert_sane(&spec.family, t, &c);
        }
    }
}

#[test]
fn handoff_counter_is_monotone_under_clock_jumps() {
    for spec in all_specs() {
        let mut m = build(&spec, 11);
        let mut rng = SimRng::seed_from_u64(12);
        let mut last = m.handoffs();
        for t in hostile_times() {
            let _ = m.sample(t, &mut rng);
            let h = m.handoffs();
            assert!(
                h >= last,
                "{}: handoffs decreased {last} -> {h} at {t:?}",
                spec.family
            );
            last = h;
        }
    }
}

#[test]
fn handoff_counter_matches_observed_discontinuities() {
    let reg = Registry::builtin();
    for spec in all_specs() {
        let family = reg.get(&spec.family).unwrap();
        let mut m = build(&spec, 21);
        let mut rng = SimRng::seed_from_u64(22);
        // Monotone scan at 50 ms — finer than every family's outage
        // window — counting transitions into full outage (loss = 1.0),
        // the observable signature of a discrete handoff.
        let mut onsets = 0u64;
        let mut in_outage = false;
        for i in 0..(RUN.as_nanos() / 50_000_000) {
            let c = m.sample(SimTime::from_nanos(i * 50_000_000), &mut rng);
            let outage = c.loss >= 1.0;
            if outage && !in_outage {
                onsets += 1;
            }
            in_outage = outage;
        }
        if family.has_handoffs {
            assert!(
                m.handoffs() >= onsets,
                "{}: {} outage onsets but only {} handoffs counted",
                spec.family,
                onsets,
                m.handoffs()
            );
        } else {
            assert_eq!(
                m.handoffs(),
                0,
                "{}: no-handoff family reported handoffs",
                spec.family
            );
            assert_eq!(
                onsets, 0,
                "{}: no-handoff family showed full outages",
                spec.family
            );
        }
    }
}

#[test]
fn model_names_are_stable_identifiers() {
    // Model identification goes through name() strings (no TypeId
    // downcasts anywhere): every family's default build must report a
    // non-empty, stable name, distinct from the generic default.
    for spec in all_specs() {
        let m = build(&spec, 31);
        let name = m.name().to_string();
        assert!(!name.is_empty());
        assert_ne!(
            name, "channel",
            "{}: default trait name leaked",
            spec.family
        );
        // Building again yields the same identifier.
        assert_eq!(build(&spec, 77).name(), name, "{}", spec.family);
    }
}

#[test]
fn durations_span_the_requested_run() {
    for spec in all_specs() {
        let m = build(&spec, 41);
        let d = m.duration().as_secs_f64();
        assert!(
            (d - RUN.as_secs_f64()).abs() < 1.0,
            "{}: duration {d}s vs requested {}s",
            spec.family,
            RUN.as_secs_f64()
        );
    }
}
