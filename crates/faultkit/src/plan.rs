//! The fault-plan DSL: a declarative list of faults to inject.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One fault to inject, keyed off virtual time, record indices, or byte
/// offsets (never wall clock) so replay is bitwise-reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Flip one byte of the encoded record stream at cumulative offset
    /// `at_byte` (XOR with a seed-derived non-zero mask).
    CorruptChunk {
        /// Byte offset into the encoded record stream.
        at_byte: u64,
    },
    /// Drop the final `pct` percent of the collection span: records
    /// with timestamps past the cutoff never reach the decoder.
    TruncateTrace {
        /// Percentage of the trace tail to cut, clamped to `[0, 100]`.
        pct: f64,
    },
    /// Drop distilled tuples whose emission index falls in
    /// `[start, end)` before they reach the modulation feed.
    DropTuples {
        /// First emission index dropped.
        start: u64,
        /// One past the last emission index dropped.
        end: u64,
    },
    /// Suppress `TupleFeed::pump` until virtual time `virtual_ms`,
    /// starving the modulation buffer.
    StallFeed {
        /// Virtual time (ms from run start) the stall lasts until.
        virtual_ms: u64,
    },
    /// From a seed-derived record index onward, shift record timestamps
    /// by `delta_ms` (clamped to ±1 h; saturating arithmetic).
    ClockJump {
        /// Signed timestamp shift in milliseconds.
        delta_ms: i64,
    },
    /// Kill the worker executing plan-cell `idx` once it has processed
    /// `at_record` trace records; the plan runner restarts the cell
    /// from its plan entry.
    KillWorker {
        /// Plan-cell index targeted (stable across worker counts).
        idx: usize,
        /// Record count at which the kill fires.
        at_record: u64,
    },
    /// Shrink the collection pseudo-device ring to `cap` bytes,
    /// forcing overruns under load.
    OomRing {
        /// Ring capacity in bytes (floored to 64).
        cap: usize,
    },
}

impl Fault {
    /// Short stable name used in fault events and counters.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::CorruptChunk { .. } => "corrupt_chunk",
            Fault::TruncateTrace { .. } => "truncate_trace",
            Fault::DropTuples { .. } => "drop_tuples",
            Fault::StallFeed { .. } => "stall_feed",
            Fault::ClockJump { .. } => "clock_jump",
            Fault::KillWorker { .. } => "kill_worker",
            Fault::OomRing { .. } => "oom_ring",
        }
    }
}

/// A declarative fault-injection plan: the `(seed, plan)` pair fully
/// determines every injected fault.
///
/// Built fluently:
///
/// ```
/// use faultkit::FaultPlan;
/// let plan = FaultPlan::new()
///     .corrupt_chunk(4096)
///     .truncate_trace(10.0)
///     .drop_tuples(5..8)
///     .stall_feed(20_000)
///     .clock_jump(-1_500)
///     .kill_worker(0, 1_000)
///     .oom_ring(2_048);
/// assert_eq!(plan.len(), 7);
/// let json = plan.to_json();
/// assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults, in declaration order.
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; the chaos path is then an
    /// identity transform over the pipeline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Flip one byte of the encoded record stream at offset `at_byte`.
    pub fn corrupt_chunk(mut self, at_byte: u64) -> Self {
        self.faults.push(Fault::CorruptChunk { at_byte });
        self
    }

    /// Cut the final `pct` percent of the collection span.
    pub fn truncate_trace(mut self, pct: f64) -> Self {
        self.faults.push(Fault::TruncateTrace { pct });
        self
    }

    /// Drop distilled tuples with emission index in `range`.
    pub fn drop_tuples(mut self, range: Range<u64>) -> Self {
        self.faults.push(Fault::DropTuples {
            start: range.start,
            end: range.end,
        });
        self
    }

    /// Starve the modulation feed until virtual time `virtual_ms`.
    pub fn stall_feed(mut self, virtual_ms: u64) -> Self {
        self.faults.push(Fault::StallFeed { virtual_ms });
        self
    }

    /// Shift record timestamps by `delta` milliseconds from a
    /// seed-derived record index onward.
    pub fn clock_jump(mut self, delta: i64) -> Self {
        self.faults.push(Fault::ClockJump { delta_ms: delta });
        self
    }

    /// Kill the worker running plan-cell `idx` after `at_record`
    /// processed records; the runner restarts the cell.
    pub fn kill_worker(mut self, idx: usize, at_record: u64) -> Self {
        self.faults.push(Fault::KillWorker { idx, at_record });
        self
    }

    /// Shrink the collection ring buffer to `cap` bytes.
    pub fn oom_ring(mut self, cap: usize) -> Self {
        self.faults.push(Fault::OomRing { cap });
        self
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in declaration order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Serialize to the JSON form accepted by `tracemod chaos --plan`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plan serializes")
    }

    /// Parse a plan from JSON, rejecting malformed input with a
    /// human-readable message (surfaced as a usage error by the CLI).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_faults() {
        let plan = FaultPlan::new().oom_ring(128).corrupt_chunk(7);
        assert_eq!(
            plan.faults(),
            &[
                Fault::OomRing { cap: 128 },
                Fault::CorruptChunk { at_byte: 7 }
            ]
        );
    }

    #[test]
    fn json_round_trip_covers_every_variant() {
        let plan = FaultPlan::new()
            .corrupt_chunk(11)
            .truncate_trace(25.0)
            .drop_tuples(2..4)
            .stall_feed(9_000)
            .clock_jump(-250)
            .kill_worker(3, 42)
            .oom_ring(512);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("round trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(FaultPlan::from_json("{not json").is_err());
        assert!(FaultPlan::from_json("[]").is_err());
        assert!(FaultPlan::from_json(r#"{"faults":[{"Nope":{}}]}"#).is_err());
    }
}
