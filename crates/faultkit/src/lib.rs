//! # faultkit — deterministic fault injection for the emulation pipeline
//!
//! The pipeline (collection → distillation → modulation) is only
//! trustworthy as a measurement instrument if it degrades predictably
//! when inputs are hostile: truncated trace chunks, corrupt records,
//! starved tuple feeds, clock jumps, and mid-run worker failure. This
//! crate provides the *injection plane* for exercising exactly those
//! failure modes, deterministically:
//!
//! * [`FaultPlan`] — a builder-style DSL describing *which* faults to
//!   inject (`corrupt_chunk(at_byte)`, `truncate_trace(pct)`,
//!   `drop_tuples(range)`, `stall_feed(virtual_ms)`,
//!   `clock_jump(delta)`, `kill_worker(idx, at_record)`,
//!   `oom_ring(cap)`), serializable to/from JSON for
//!   `tracemod chaos --plan FILE`;
//! * [`FaultInjector`] — the runtime: seeded with `(seed, plan)`, it
//!   sits between trace collection and distillation, pushing every
//!   fresh record through an encode → byte-fault → quarantine-decode →
//!   sanitize chain, and exposes hooks for the feed-stall, ring-cap and
//!   worker-kill faults that live outside the record path;
//! * [`ChaosSink`] — a [`TupleSink`] adapter that drops distilled
//!   tuples by emission index on the way to the modulation feed;
//! * [`FaultEvent`] / [`FaultCounters`] — the observable side: one
//!   event per injected fault (virtual-time stamped, JSONL-ready) and
//!   the counter block that lands in the `RunManifest` under `fault.*`.
//!
//! **Determinism rule**: every fault fires off virtual time, record
//! indices, or byte offsets — never wall clock — so the same
//! `(seed, plan)` replays bitwise-identically at any worker count.
//!
//! [`TupleSink`]: tracekit::TupleSink

#![warn(missing_docs)]

mod inject;
mod plan;

pub use inject::{
    events_from_jsonl, events_to_jsonl, ChaosSink, FaultCounters, FaultEvent, FaultInjector,
};
pub use plan::{Fault, FaultPlan};
