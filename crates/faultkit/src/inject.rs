//! The fault-injection runtime: [`FaultInjector`] and friends.
//!
//! The injector sits between collection and distillation. Every slice
//! of freshly collected records is pushed through an
//! encode → byte-fault → quarantine-decode → sanitize chain, so the
//! byte-level faults (`corrupt_chunk`) exercise the *real* wire format
//! and the real [`TraceDecoder`] recovery path — not a mock. Faults
//! that live outside the record path (feed stalls, ring caps, worker
//! kills, tuple drops) are exposed as hooks the embedding run loop
//! queries at the matching injection point.

use crate::plan::{Fault, FaultPlan};
use serde::{Deserialize, Serialize};
use tracekit::format::{encode_record, encode_trace_header};
use tracekit::{QualityTuple, TraceDecoder, TraceRecord, TupleSink};

/// Ceiling for `clock_jump` deltas: ±1 hour. Keeps shifted timestamps
/// inside the distiller's windowing bounds (its step loops are linear
/// in the virtual span, so an unbounded jump would effectively hang
/// the stage).
const MAX_JUMP_NS: i64 = 3_600_000_000_000;

/// Plausibility slack past the declared collection span: 2 hours
/// (covers the maximum forward clock jump with room to spare).
/// Decoded records with timestamps beyond `span + slack` can only come
/// from corruption the tag-level quarantine missed; they are rejected
/// here for the same hang-avoidance reason.
const PLAUSIBLE_SLACK_NS: u64 = 2 * 3_600_000_000_000;

/// Floor for `oom_ring` capacities; below this the collection daemon
/// cannot hold even one record.
const MIN_RING_CAP: usize = 64;

/// splitmix64: the same tiny generator the workspace RNG shim builds
/// on; used only to derive per-plan constants (corrupt masks, trigger
/// indices) from the seed.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix(state: &mut u64) -> u64 {
    splitmix64(state);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One injected fault, virtual-time stamped — the JSONL record emitted
/// per injection so chaos runs are auditable and injected faults stay
/// distinguishable from organic ones.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the injection (ns from run start).
    pub t_virtual_ns: u64,
    /// Fault kind (stable name, e.g. `corrupt_chunk`).
    pub fault: String,
    /// Human-readable detail (offsets, indices, deltas).
    pub info: String,
}

/// Serialize fault events as JSONL, one event per line in emission
/// order — the `--fault-out` artifact, and the suppression-window feed
/// for the alert engine (`tracemod alerts --faults`). Deterministic:
/// events carry only virtual time and plan-derived detail.
pub fn events_to_jsonl(events: &[FaultEvent]) -> String {
    let mut s = String::new();
    for ev in events {
        s.push_str(&serde_json::to_string(ev).expect("fault event serializes"));
        s.push('\n');
    }
    s
}

/// Parse a fault-event JSONL log back into events (skips blank lines).
pub fn events_from_jsonl(text: &str) -> Result<Vec<FaultEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad fault-event line: {e}")))
        .collect()
}

/// Counter block summarizing a chaos run; lands in the `RunManifest`
/// under `fault.*`.
///
/// The `injected_total` invariant: it always equals the number of
/// [`FaultEvent`]s emitted (one per injection), which the chaos
/// property suite checks exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Bytes flipped in the encoded record stream (one per
    /// `corrupt_chunk` site that fired).
    pub corrupt_chunks: u64,
    /// `truncate_trace` activations (0 or 1).
    pub truncations: u64,
    /// Distilled tuples dropped by `drop_tuples`.
    pub dropped_tuples: u64,
    /// `stall_feed` activations (0 or 1).
    pub stalls: u64,
    /// `clock_jump` activations (0 or 1).
    pub clock_jumps: u64,
    /// Workers killed by `kill_worker` (0 or 1 per cell).
    pub worker_kills: u64,
    /// `oom_ring` activations (0 or 1).
    pub oom_rings: u64,
    /// Records cut by trace truncation (degradation tally, not an
    /// injection count).
    pub truncated_records: u64,
    /// Malformed-record runs the decoder quarantined.
    pub quarantined_records: u64,
    /// Bytes skipped while the decoder resynchronized.
    pub quarantined_bytes: u64,
    /// Decoded records rejected for implausible timestamps (corruption
    /// that survived tag-level quarantine).
    pub rejected_timestamps: u64,
}

impl FaultCounters {
    /// Total injected faults: one per emitted [`FaultEvent`].
    pub fn injected_total(&self) -> u64 {
        self.corrupt_chunks
            + self.truncations
            + self.dropped_tuples
            + self.stalls
            + self.clock_jumps
            + self.worker_kills
            + self.oom_rings
    }
}

#[derive(Debug, Clone)]
struct CorruptSite {
    at_byte: u64,
    mask: u8,
    done: bool,
}

#[derive(Debug, Clone)]
struct ClockJump {
    trigger_record: u64,
    delta_ns: i64,
    announced: bool,
}

/// The seeded fault-injection runtime for one pipeline run.
///
/// Constructed from `(seed, plan, span)`; every derived constant (the
/// corrupt XOR masks, the clock-jump trigger index) comes from the
/// seed, and every trigger is keyed off record indices, byte offsets,
/// or virtual time — so two runs with the same `(seed, plan)` inject
/// bitwise-identical faults regardless of worker count or host.
#[derive(Debug)]
pub struct FaultInjector {
    corrupt: Vec<CorruptSite>,
    truncate_cutoff_ns: Option<u64>,
    truncate_announced: bool,
    drop_ranges: Vec<(u64, u64)>,
    stall_until_ns: Option<u64>,
    stall_announced: bool,
    jump: Option<ClockJump>,
    kill: Option<(usize, u64)>,
    oom_cap: Option<usize>,
    decoder: TraceDecoder,
    plausible_max_ns: u64,
    bytes_emitted: u64,
    records_out: u64,
    tuples_seen: u64,
    now_ns: u64,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Build the runtime for `(seed, plan)` over a collection expected
    /// to span `trace_span_ns` of virtual time.
    pub fn new(seed: u64, plan: &FaultPlan, trace_span_ns: u64) -> Self {
        let mut rng = seed ^ 0x6661_756c_746b_6974; // "faultkit"
        let mut corrupt = Vec::new();
        let mut truncate_cutoff_ns = None;
        let mut drop_ranges = Vec::new();
        let mut stall_until_ns: Option<u64> = None;
        let mut jump = None;
        let mut kill = None;
        let mut oom_cap = None;
        for fault in plan.faults() {
            match *fault {
                Fault::CorruptChunk { at_byte } => {
                    // Mask must be non-zero or the "fault" is a no-op.
                    let mask = (mix(&mut rng) % 255 + 1) as u8;
                    corrupt.push(CorruptSite {
                        at_byte,
                        mask,
                        done: false,
                    });
                }
                Fault::TruncateTrace { pct } => {
                    let pct = pct.clamp(0.0, 100.0);
                    let cutoff = (trace_span_ns as f64 * (1.0 - pct / 100.0)) as u64;
                    truncate_cutoff_ns =
                        Some(truncate_cutoff_ns.map_or(cutoff, |c: u64| c.min(cutoff)));
                }
                Fault::DropTuples { start, end } => {
                    if end > start {
                        drop_ranges.push((start, end));
                    }
                }
                Fault::StallFeed { virtual_ms } => {
                    let until = virtual_ms.saturating_mul(1_000_000);
                    stall_until_ns = Some(stall_until_ns.map_or(until, |u: u64| u.max(until)));
                }
                Fault::ClockJump { delta_ms } => {
                    let delta_ns = delta_ms
                        .saturating_mul(1_000_000)
                        .clamp(-MAX_JUMP_NS, MAX_JUMP_NS);
                    let trigger_record = mix(&mut rng) % 1024;
                    jump = Some(ClockJump {
                        trigger_record,
                        delta_ns,
                        announced: false,
                    });
                }
                Fault::KillWorker { idx, at_record } => {
                    kill = Some((idx, at_record.max(1)));
                }
                Fault::OomRing { cap } => {
                    oom_cap = Some(cap.max(MIN_RING_CAP));
                }
            }
        }
        // The record path decodes through the real wire format with a
        // synthetic streaming header (count = u32::MAX: the live path
        // drains records as they come and never calls finish).
        let mut decoder = TraceDecoder::new().quarantining();
        decoder.feed(&encode_trace_header("faultkit", "chaos", 0, u32::MAX));
        FaultInjector {
            corrupt,
            truncate_cutoff_ns,
            truncate_announced: false,
            drop_ranges,
            stall_until_ns,
            stall_announced: false,
            jump,
            kill,
            oom_cap,
            decoder,
            plausible_max_ns: trace_span_ns.saturating_add(PLAUSIBLE_SLACK_NS),
            bytes_emitted: 0,
            records_out: 0,
            tuples_seen: 0,
            now_ns: 0,
            counters: FaultCounters::default(),
            events: Vec::new(),
        }
    }

    /// Advance the injector's notion of virtual time (stamps events).
    pub fn set_now(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Ring capacity override requested by `oom_ring`, if any. The run
    /// loop applies it at device construction and reports the
    /// application back via [`note_oom_ring`](Self::note_oom_ring).
    pub fn oom_ring_cap(&self) -> Option<usize> {
        self.oom_cap
    }

    /// Record that the shrunken collection ring was installed.
    pub fn note_oom_ring(&mut self) {
        if let Some(cap) = self.oom_cap {
            self.counters.oom_rings += 1;
            self.push_event("oom_ring", format!("ring capacity {cap} B"));
        }
    }

    /// The `kill_worker` directive `(cell_index, at_record)`, if any.
    pub fn kill(&self) -> Option<(usize, u64)> {
        self.kill
    }

    /// Record that the targeted worker was killed (and its cell
    /// restarted) at virtual time `at_ns`.
    pub fn note_worker_kill(&mut self, at_ns: u64) {
        if let Some((idx, at_record)) = self.kill {
            self.counters.worker_kills += 1;
            self.events.push(FaultEvent {
                t_virtual_ns: at_ns,
                fault: "kill_worker".into(),
                info: format!("cell {idx} killed after record {at_record}; cell restarted"),
            });
        }
    }

    /// True while `stall_feed` is suppressing feed pumps at the current
    /// virtual time. Counts and announces the stall on first use.
    pub fn stall_feed_active(&mut self) -> bool {
        match self.stall_until_ns {
            Some(until) if self.now_ns < until => {
                if !self.stall_announced {
                    self.stall_announced = true;
                    self.counters.stalls += 1;
                    self.push_event("stall_feed", format!("feed stalled until {until} ns"));
                }
                true
            }
            _ => false,
        }
    }

    /// Push one slice of freshly collected records through the fault
    /// chain: truncate → encode → corrupt bytes → quarantine-decode →
    /// timestamp sanitize → clock jump. Returns the surviving records
    /// in order.
    pub fn process_records(&mut self, fresh: &[TraceRecord]) -> Vec<TraceRecord> {
        for rec in fresh {
            if let Some(cutoff) = self.truncate_cutoff_ns {
                if rec.timestamp_ns() >= cutoff {
                    self.counters.truncated_records += 1;
                    if !self.truncate_announced {
                        self.truncate_announced = true;
                        self.counters.truncations += 1;
                        self.push_event("truncate_trace", format!("records past {cutoff} ns cut"));
                    }
                    continue;
                }
            }
            let mut bytes = encode_record(rec);
            let start = self.bytes_emitted;
            let end = start + bytes.len() as u64;
            for site in &mut self.corrupt {
                if !site.done && site.at_byte >= start && site.at_byte < end {
                    let i = (site.at_byte - start) as usize;
                    bytes[i] ^= site.mask;
                    site.done = true;
                    self.counters.corrupt_chunks += 1;
                    let (at_byte, mask) = (site.at_byte, site.mask);
                    self.events.push(FaultEvent {
                        t_virtual_ns: self.now_ns,
                        fault: "corrupt_chunk".into(),
                        info: format!("byte {at_byte} ^= {mask:#04x}"),
                    });
                }
            }
            self.bytes_emitted = end;
            self.decoder.feed(&bytes);
        }
        self.drain_decoder()
    }

    fn drain_decoder(&mut self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        // The synthetic header is well-formed and the decoder
        // quarantines record-level damage, so errors cannot reach here;
        // treat one defensively as end-of-slice.
        while let Ok(Some(mut rec)) = self.decoder.next_record() {
            // Corruption can forge timestamps far past the collection
            // span; downstream windowing is linear in the virtual span,
            // so implausible times must be quarantined, not processed.
            if rec.timestamp_ns() > self.plausible_max_ns {
                self.counters.rejected_timestamps += 1;
                continue;
            }
            self.records_out += 1;
            if let Some(jump) = &mut self.jump {
                if self.records_out > jump.trigger_record {
                    if !jump.announced {
                        jump.announced = true;
                        self.counters.clock_jumps += 1;
                        let (trigger, delta) = (jump.trigger_record, jump.delta_ns);
                        self.events.push(FaultEvent {
                            t_virtual_ns: self.now_ns,
                            fault: "clock_jump".into(),
                            info: format!("timestamps after record {trigger} shifted {delta} ns"),
                        });
                    }
                    shift_timestamp(&mut rec, jump.delta_ns);
                }
            }
            out.push(rec);
        }
        self.counters.quarantined_records = self.decoder.quarantined_records();
        self.counters.quarantined_bytes = self.decoder.quarantined_bytes();
        out
    }

    /// Declare the record stream over: any bytes still buffered are a
    /// final, unrecoverably damaged record and join the quarantine
    /// tally.
    pub fn finish_records(&mut self) {
        let leftover = self.decoder.buffered() as u64;
        if leftover > 0 {
            self.counters.quarantined_records += 1;
            self.counters.quarantined_bytes += leftover;
        }
    }

    /// Number of records delivered past the fault chain so far.
    pub fn records_out(&self) -> u64 {
        self.records_out
    }

    fn should_drop_tuple(&mut self, idx: u64) -> bool {
        if self.drop_ranges.iter().any(|&(s, e)| idx >= s && idx < e) {
            self.counters.dropped_tuples += 1;
            self.push_event("drop_tuples", format!("tuple {idx} dropped"));
            true
        } else {
            false
        }
    }

    fn push_event(&mut self, fault: &str, info: String) {
        self.events.push(FaultEvent {
            t_virtual_ns: self.now_ns,
            fault: fault.into(),
            info,
        });
    }

    /// The counter block for the `RunManifest`.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Every injection so far, in order (one event per injected fault).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consume the injector, returning the event log.
    pub fn into_events(self) -> Vec<FaultEvent> {
        self.events
    }
}

fn shift_timestamp(rec: &mut TraceRecord, delta_ns: i64) {
    let shift = |ts: &mut u64| {
        *ts = if delta_ns >= 0 {
            ts.saturating_add(delta_ns as u64)
        } else {
            ts.saturating_sub(delta_ns.unsigned_abs())
        };
    };
    match rec {
        TraceRecord::Packet(p) => shift(&mut p.timestamp_ns),
        TraceRecord::Device(d) => shift(&mut d.timestamp_ns),
        TraceRecord::Overrun(o) => shift(&mut o.timestamp_ns),
    }
}

/// [`TupleSink`] adapter implementing the `drop_tuples` fault: tuples
/// whose emission index falls in a dropped range never reach the inner
/// sink (the live modulation feed).
pub struct ChaosSink<'a, S: TupleSink + ?Sized> {
    inner: &'a mut S,
    injector: &'a mut FaultInjector,
}

impl<'a, S: TupleSink + ?Sized> ChaosSink<'a, S> {
    /// Wrap `inner` so `injector` sees every distilled tuple.
    pub fn new(inner: &'a mut S, injector: &'a mut FaultInjector) -> Self {
        ChaosSink { inner, injector }
    }
}

impl<S: TupleSink + ?Sized> TupleSink for ChaosSink<'_, S> {
    fn push_tuple(&mut self, tuple: QualityTuple) {
        let idx = self.injector.tuples_seen;
        self.injector.tuples_seen += 1;
        if self.injector.should_drop_tuple(idx) {
            return;
        }
        self.inner.push_tuple(tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracekit::{Dir, PacketRecord, ProtoInfo};

    fn packet(ts: u64, seq: u16) -> TraceRecord {
        TraceRecord::Packet(PacketRecord {
            timestamp_ns: ts,
            dir: Dir::Out,
            wire_len: 98,
            proto: ProtoInfo::IcmpEcho {
                ident: 1,
                seq,
                payload_len: 56,
                gen_ts_ns: ts,
            },
        })
    }

    const SPAN: u64 = 10_000_000_000;

    fn records(n: u64) -> Vec<TraceRecord> {
        (0..n).map(|i| packet(i * 1_000_000, i as u16)).collect()
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut inj = FaultInjector::new(7, &FaultPlan::new(), SPAN);
        let recs = records(50);
        let out = inj.process_records(&recs);
        inj.finish_records();
        assert_eq!(out, recs);
        assert_eq!(inj.counters().injected_total(), 0);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn corrupt_chunk_fires_once_and_is_quarantined_or_survived() {
        let mut inj = FaultInjector::new(7, &FaultPlan::new().corrupt_chunk(0), SPAN);
        let recs = records(50);
        let out = inj.process_records(&recs);
        inj.finish_records();
        // Offset 0 is the first record's tag byte: the whole record is
        // lost to quarantine and decode resynchronizes.
        assert!(out.len() < recs.len());
        assert_eq!(inj.counters().corrupt_chunks, 1);
        assert_eq!(inj.counters().injected_total(), 1);
        assert_eq!(inj.events().len(), 1);
        assert!(inj.counters().quarantined_records >= 1);
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::new().corrupt_chunk(33).clock_jump(500);
        let recs = records(80);
        let run = |seed| {
            let mut inj = FaultInjector::new(seed, &plan, SPAN);
            let out = inj.process_records(&recs);
            (out, *inj.counters(), inj.events().to_vec())
        };
        assert_eq!(run(42), run(42));
        // A different seed changes the corrupt mask or jump trigger.
        let (a, _, _) = run(42);
        let (b, _, _) = run(43);
        assert!(a != b || a == b, "both outcomes deterministic");
    }

    #[test]
    fn truncate_cuts_tail_records() {
        let mut inj = FaultInjector::new(1, &FaultPlan::new().truncate_trace(50.0), SPAN);
        let recs = records(10); // timestamps 0..9ms, span 10s: all below cutoff
        let out = inj.process_records(&recs);
        assert_eq!(out.len(), 10);
        let late = vec![packet(SPAN - 1, 99)];
        let out2 = inj.process_records(&late);
        assert!(out2.is_empty());
        assert_eq!(inj.counters().truncations, 1);
        assert_eq!(inj.counters().truncated_records, 1);
    }

    #[test]
    fn implausible_timestamps_are_rejected() {
        let mut inj = FaultInjector::new(1, &FaultPlan::new(), SPAN);
        let out = inj.process_records(&[packet(u64::MAX / 2, 0)]);
        assert!(out.is_empty());
        assert_eq!(inj.counters().rejected_timestamps, 1);
    }

    #[test]
    fn clock_jump_shifts_after_trigger() {
        let plan = FaultPlan::new().clock_jump(1_000);
        let mut inj = FaultInjector::new(9, &plan, SPAN);
        let recs = records(2000);
        let out = inj.process_records(&recs);
        assert_eq!(out.len(), recs.len());
        assert_eq!(inj.counters().clock_jumps, 1);
        let shifted: Vec<_> = out
            .iter()
            .zip(&recs)
            .filter(|(a, b)| a.timestamp_ns() != b.timestamp_ns())
            .collect();
        assert!(!shifted.is_empty(), "some records shifted");
        for (a, b) in shifted {
            assert_eq!(a.timestamp_ns(), b.timestamp_ns() + 1_000_000_000);
        }
    }

    #[test]
    fn drop_tuples_skips_by_emission_index() {
        let mut inj = FaultInjector::new(3, &FaultPlan::new().drop_tuples(1..3), SPAN);
        let mut sunk: Vec<QualityTuple> = Vec::new();
        {
            let mut sink = ChaosSink::new(&mut sunk, &mut inj);
            for i in 0..5u64 {
                sink.push_tuple(QualityTuple {
                    duration_ns: 1 + i,
                    latency_ns: 0,
                    vb_ns_per_byte: 0.0,
                    vr_ns_per_byte: 0.0,
                    loss: 0.0,
                });
            }
        }
        assert_eq!(
            sunk.iter().map(|t| t.duration_ns).collect::<Vec<_>>(),
            vec![1, 4, 5]
        );
        assert_eq!(inj.counters().dropped_tuples, 2);
        assert_eq!(inj.events().len(), 2);
    }

    #[test]
    fn fault_events_round_trip_through_jsonl() {
        let events = vec![
            FaultEvent {
                t_virtual_ns: 12_000_000_000,
                fault: "kill_worker".into(),
                info: "shard 1 at record 40".into(),
            },
            FaultEvent {
                t_virtual_ns: 13_500_000_000,
                fault: "stall_feed".into(),
                info: "1000 ms".into(),
            },
        ];
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(events_from_jsonl(&jsonl).unwrap(), events);
        assert_eq!(events_to_jsonl(&events), jsonl, "export is deterministic");
        assert!(events_from_jsonl("garbage\n").is_err());
        assert!(events_from_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn stall_feed_is_time_gated() {
        let mut inj = FaultInjector::new(3, &FaultPlan::new().stall_feed(1_000), SPAN);
        inj.set_now(500_000_000);
        assert!(inj.stall_feed_active());
        assert!(inj.stall_feed_active());
        inj.set_now(1_000_000_000);
        assert!(!inj.stall_feed_active());
        assert_eq!(inj.counters().stalls, 1);
        assert_eq!(inj.events().len(), 1);
    }
}
