//! Chaos property tests: the full streaming pipeline under *arbitrary*
//! fault plans.
//!
//! Three guarantees are pinned here:
//!
//! 1. **No plan can break the pipeline** — for any generated
//!    `(seed, plan)` the Porter-walk chaos run returns (never panics,
//!    never hangs) and its fault ledger balances: the manifest's
//!    `fault.injected_total` equals the injector's tally equals the
//!    number of emitted fault events, and every per-type counter equals
//!    the number of events of that type.
//! 2. **Chaos runs are exactly as reproducible as clean ones** — the
//!    same `(seed, plan)` executed twice, serially or on 1/2/8 workers,
//!    yields byte-identical deterministic manifests and byte-identical
//!    fault-event logs.
//! 3. **The empty plan is the identity** — a chaos run that injects
//!    nothing produces the same benchmark result and the same manifest
//!    as the plain streaming pipeline (modulo the zeroed `fault.*`
//!    counter block that records "chaos ran, nothing fired").

use distill::DistillConfig;
use emu::{
    chaos_live_run, Benchmark, CellKind, ChaosOutcome, Exec, RunConfig, TrialCell, TrialPlan,
};
use faultkit::{Fault, FaultEvent, FaultPlan};
use netsim::SimDuration;
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeMap;
use wavelan::Scenario;

/// A short Porter walk: long enough for collection, distillation and
/// modulation to all engage, short enough that a property test can
/// afford dozens of full pipeline runs.
fn porter(secs: u64) -> Scenario {
    let mut sc = Scenario::porter();
    sc.duration = SimDuration::from_secs(secs);
    sc
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u64..200_000).prop_map(|at_byte| Fault::CorruptChunk { at_byte }),
        (0.0f64..100.0).prop_map(|pct| Fault::TruncateTrace { pct }),
        (0u64..40, 0u64..40).prop_map(|(start, n)| Fault::DropTuples {
            start,
            end: start + n,
        }),
        (0u64..60_000).prop_map(|virtual_ms| Fault::StallFeed { virtual_ms }),
        (-4_000_000i64..4_000_000).prop_map(|delta_ms| Fault::ClockJump { delta_ms }),
        (0usize..2, 1u64..3_000).prop_map(|(idx, at_record)| Fault::KillWorker { idx, at_record }),
        (0usize..4096).prop_map(|cap| Fault::OomRing { cap }),
    ]
}

/// Rebuild a [`FaultPlan`] from generated faults via the builder DSL
/// (the only public construction path, so the test also exercises it).
fn plan_from(faults: &[Fault]) -> FaultPlan {
    faults.iter().fold(FaultPlan::new(), |p, f| match *f {
        Fault::CorruptChunk { at_byte } => p.corrupt_chunk(at_byte),
        Fault::TruncateTrace { pct } => p.truncate_trace(pct),
        Fault::DropTuples { start, end } => p.drop_tuples(start..end),
        Fault::StallFeed { virtual_ms } => p.stall_feed(virtual_ms),
        Fault::ClockJump { delta_ms } => p.clock_jump(delta_ms),
        Fault::KillWorker { idx, at_record } => p.kill_worker(idx, at_record),
        Fault::OomRing { cap } => p.oom_ring(cap),
    })
}

fn run_chaos(seed: u64, plan: &FaultPlan, cell_index: usize) -> ChaosOutcome {
    chaos_live_run(
        &porter(30),
        1,
        Benchmark::Web,
        &DistillConfig::default(),
        &RunConfig::default(),
        seed,
        plan,
        cell_index,
    )
}

fn events_jsonl(events: &[FaultEvent]) -> String {
    events
        .iter()
        .map(|e| serde_json::to_string(e).expect("fault event serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: any plan terminates with a balanced fault ledger.
    #[test]
    fn arbitrary_plans_never_panic_and_account_every_fault(
        faults in collection::vec(arb_fault(), 0..8),
        seed in 0u64..1_000_000,
    ) {
        let plan = plan_from(&faults);
        let out = run_chaos(seed, &plan, 0);

        // injected_total == number of emitted events, always.
        let total = out.counters.injected_total();
        prop_assert_eq!(total, out.faults.len() as u64);

        // The manifest carries the same tally.
        let manifest = &out.outcome.manifest;
        prop_assert_eq!(manifest.metrics.counter("fault.injected_total"), Some(total));

        // Every per-type counter equals the number of events of that
        // type — no fault is double-counted or silently dropped.
        let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
        for ev in &out.faults {
            *by_name.entry(ev.fault.as_str()).or_insert(0) += 1;
        }
        let expect = |name: &str| by_name.get(name).copied().unwrap_or(0);
        prop_assert_eq!(out.counters.corrupt_chunks, expect("corrupt_chunk"));
        prop_assert_eq!(out.counters.truncations, expect("truncate_trace"));
        prop_assert_eq!(out.counters.dropped_tuples, expect("drop_tuples"));
        prop_assert_eq!(out.counters.stalls, expect("stall_feed"));
        prop_assert_eq!(out.counters.clock_jumps, expect("clock_jump"));
        prop_assert_eq!(out.counters.worker_kills, expect("kill_worker"));
        prop_assert_eq!(out.counters.oom_rings, expect("oom_ring"));
    }

    /// Invariant 2, propertyized: rerunning the same `(seed, plan)`
    /// standalone reproduces manifest and fault log byte for byte.
    #[test]
    fn rerun_is_bitwise_identical(
        faults in collection::vec(arb_fault(), 0..6),
        seed in 0u64..1_000_000,
    ) {
        let plan = plan_from(&faults);
        let a = run_chaos(seed, &plan, 0);
        let b = run_chaos(seed, &plan, 0);
        prop_assert_eq!(
            a.outcome.manifest.deterministic_json(),
            b.outcome.manifest.deterministic_json()
        );
        prop_assert_eq!(events_jsonl(&a.faults), events_jsonl(&b.faults));
    }
}

/// Invariant 2 at scale: a three-cell chaos plan with every fault type
/// (including a worker kill targeting cell 0) executed serially, on
/// 1, 2 and 8 workers, and then all over again — six executions, one
/// byte pattern.
#[test]
fn chaos_plan_identical_at_1_2_8_workers_and_across_reruns() {
    let sc = porter(30);
    let fault_plan = FaultPlan::new()
        .corrupt_chunk(2_048)
        .truncate_trace(10.0)
        .drop_tuples(3..6)
        .stall_feed(15_000)
        .clock_jump(400)
        .kill_worker(0, 200)
        .oom_ring(128);

    let build = || {
        let mut p = TrialPlan::new();
        for trial in 1..=3u32 {
            p.push(TrialCell {
                label: format!("chaos-{trial}"),
                trial,
                cfg: RunConfig::default(),
                kind: CellKind::Chaos {
                    scenario: sc.clone(),
                    benchmark: Benchmark::Web,
                    distill: DistillConfig::default(),
                    seed: 42,
                    plan: fault_plan.clone(),
                },
            });
        }
        p
    };

    let snapshot = |exec: &Exec| -> Vec<(String, String)> {
        build()
            .run(exec)
            .chaos(sc.name, Benchmark::Web)
            .iter()
            .map(|o| {
                (
                    o.outcome.manifest.deterministic_json(),
                    events_jsonl(&o.faults),
                )
            })
            .collect()
    };

    let baseline = snapshot(&Exec::serial());
    assert_eq!(baseline.len(), 3, "three chaos cells must report");
    assert!(
        baseline
            .iter()
            .any(|(m, _)| m.contains("\"fault.worker_kills\":1")),
        "the kill must land in exactly the targeted cell's manifest"
    );

    for workers in [1, 2, 8] {
        assert_eq!(
            snapshot(&Exec::with_workers(workers)),
            baseline,
            "{workers} workers: chaos output diverged from serial"
        );
    }
    assert_eq!(
        snapshot(&Exec::serial()),
        baseline,
        "serial rerun diverged from itself"
    );
}

/// Invariant 3: the empty plan is the identity transform — same
/// benchmark outcome, same manifest once the (all-zero) `fault.*`
/// counter block recording the chaos run itself is set aside.
#[test]
fn empty_plan_chaos_run_matches_the_clean_pipeline() {
    let sc = porter(30);
    let dcfg = DistillConfig::default();
    let cfg = RunConfig::default();

    let chaos = run_chaos(7, &FaultPlan::new(), 0);
    assert_eq!(chaos.counters.injected_total(), 0);
    assert!(chaos.faults.is_empty());

    let clean = emu::live_modulated_run(&sc, 1, Benchmark::Web, &dcfg, &cfg);

    assert_eq!(
        chaos.outcome.result.elapsed.map(f64::to_bits),
        clean.result.elapsed.map(f64::to_bits),
        "benchmark outcome must be untouched by an empty plan"
    );

    // The deterministic form is compact JSON; splice out each
    // `"fault.<name>":<n>,` counter entry (the block sits mid-object,
    // so the trailing comma is always present).
    let strip_fault_counters = |json: &str| -> String {
        let mut s = json.to_string();
        while let Some(i) = s.find("\"fault.") {
            let colon = i + s[i..].find(':').expect("counter entry has a value");
            let mut end = colon + 1;
            let bytes = s.as_bytes();
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            assert_eq!(
                bytes.get(end),
                Some(&b','),
                "fault block must sit mid-object"
            );
            s.replace_range(i..=end, "");
        }
        s
    };
    assert_eq!(
        strip_fault_counters(&chaos.outcome.manifest.deterministic_json()),
        clean.manifest.deterministic_json(),
        "empty-plan manifest must match the clean pipeline byte for byte"
    );
}
