//! # packet — byte-level wire formats
//!
//! Real serialization for Ethernet II, IPv4, ICMP echo, UDP, and TCP,
//! with RFC 1071 checksums. The simulated stack (`netstack`) carries
//! frames as raw bytes and parses at every layer boundary — exactly where
//! the paper's tracing hooks (device layer) and modulation layer (between
//! IP and Ethernet) sit, so those components operate on genuine packets.
//!
//! ```
//! use packet::{EtherHeader, EtherType, MacAddr, Ipv4Header, IpProtocol, IcmpMessage};
//! use std::net::Ipv4Addr;
//!
//! let icmp = IcmpMessage::Echo { ident: 1, seq: 1, payload: vec![0; 56] }.emit();
//! let ip = Ipv4Header {
//!     src: Ipv4Addr::new(10, 0, 0, 1),
//!     dst: Ipv4Addr::new(10, 0, 0, 2),
//!     protocol: IpProtocol::Icmp,
//!     ttl: 64,
//!     ident: 1,
//!     total_len: 0,
//!     more_fragments: false,
//!     frag_offset: 0,
//! }.emit(&icmp);
//! let frame = EtherHeader {
//!     dst: MacAddr::local(2),
//!     src: MacAddr::local(1),
//!     ethertype: EtherType::Ipv4,
//! }.emit(&ip);
//!
//! let (eh, ip_bytes) = EtherHeader::parse(&frame).unwrap();
//! assert_eq!(eh.ethertype, EtherType::Ipv4);
//! let (ih, icmp_bytes) = Ipv4Header::parse(ip_bytes).unwrap();
//! assert_eq!(ih.protocol, IpProtocol::Icmp);
//! assert!(matches!(IcmpMessage::parse(icmp_bytes).unwrap(),
//!                  IcmpMessage::Echo { seq: 1, .. }));
//! ```

#![warn(missing_docs)]

pub mod checksum;
mod error;
mod ether;
mod icmp;
mod ipv4;
mod tcp;
mod udp;

pub use error::{ParseError, Result};
pub use ether::{EtherHeader, EtherType, MacAddr, ETHER_HEADER_LEN};
pub use icmp::{IcmpMessage, ICMP_ECHO_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// Convenience: total on-wire size of a TCP data segment with the standard
/// header stack (Ethernet + IPv4 + TCP), as the modulation model charges
/// per-byte costs on full frame sizes.
pub fn tcp_frame_len(payload: usize) -> usize {
    ETHER_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN + payload
}

/// Convenience: on-wire size of a UDP datagram frame.
pub fn udp_frame_len(payload: usize) -> usize {
    ETHER_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + payload
}

/// Convenience: on-wire size of an ICMP echo frame with `payload` bytes of
/// echo data (the probe "size" in the paper counts the echo payload).
pub fn icmp_frame_len(payload: usize) -> usize {
    ETHER_HEADER_LEN + IPV4_HEADER_LEN + ICMP_ECHO_HEADER_LEN + payload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_len_helpers() {
        assert_eq!(tcp_frame_len(0), 54);
        assert_eq!(udp_frame_len(100), 142);
        assert_eq!(icmp_frame_len(56), 98);
    }
}
