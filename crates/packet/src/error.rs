//! Parse errors for the wire-format codecs.

use std::fmt;

/// Why a buffer failed to parse as a given header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed header (or declared length).
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// IP version nibble was not 4.
    BadVersion(u8),
    /// Header-length field was out of range.
    BadHeaderLen(u8),
    /// Checksum verification failed.
    BadChecksum {
        /// Checksum carried in the packet.
        expected: u16,
        /// Checksum computed over the contents.
        computed: u16,
    },
    /// A length field disagreed with the buffer.
    BadLength {
        /// Length the header declared.
        declared: usize,
        /// Length actually available.
        available: usize,
    },
    /// Unknown or unsupported protocol/type discriminator.
    Unsupported(u8),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated: need {needed} bytes, have {got}")
            }
            ParseError::BadVersion(v) => write!(f, "bad IP version {v}"),
            ParseError::BadHeaderLen(l) => write!(f, "bad header length {l}"),
            ParseError::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "bad checksum: packet {expected:#06x}, computed {computed:#06x}"
                )
            }
            ParseError::BadLength {
                declared,
                available,
            } => write!(f, "bad length: declared {declared}, available {available}"),
            ParseError::Unsupported(x) => write!(f, "unsupported discriminator {x}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, ParseError>;
