//! ICMP echo / echo-reply codec — the carrier of the paper's known
//! workload (a modified `ping` sending small/large ECHO triplets).

use crate::checksum::{checksum, Checksum};
use crate::error::{ParseError, Result};

/// An ICMP message. Only the types the tracing workload needs are given
/// structure; everything else is preserved raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8). `ident` is the sending process id in the
    /// paper's collection format; the payload carries the send timestamp.
    Echo {
        /// Identifier (process id of the pinger).
        ident: u16,
        /// Sequence number, used by the loss estimator.
        seq: u16,
        /// Opaque payload (timestamp + padding to the probe size).
        payload: Vec<u8>,
    },
    /// Echo reply (type 0), mirroring the request's fields.
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Any other ICMP message, kept verbatim.
    Other {
        /// ICMP type byte.
        icmp_type: u8,
        /// ICMP code byte.
        code: u8,
        /// Rest-of-header plus body.
        body: Vec<u8>,
    },
}

/// Fixed part of an echo/echo-reply message.
pub const ICMP_ECHO_HEADER_LEN: usize = 8;

impl IcmpMessage {
    /// Parse an ICMP message, verifying its checksum.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage> {
        if data.len() < ICMP_ECHO_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: ICMP_ECHO_HEADER_LEN,
                got: data.len(),
            });
        }
        let computed = checksum(data);
        if computed != 0 {
            return Err(ParseError::BadChecksum {
                expected: u16::from_be_bytes([data[2], data[3]]),
                computed,
            });
        }
        let icmp_type = data[0];
        let code = data[1];
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let seq = u16::from_be_bytes([data[6], data[7]]);
        let payload = data[8..].to_vec();
        Ok(match (icmp_type, code) {
            (8, 0) => IcmpMessage::Echo {
                ident,
                seq,
                payload,
            },
            (0, 0) => IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            },
            _ => IcmpMessage::Other {
                icmp_type,
                code,
                body: data[4..].to_vec(),
            },
        })
    }

    /// Serialize, computing the checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            IcmpMessage::Echo {
                ident,
                seq,
                payload,
            } => {
                out.push(8);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out.push(0);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::Other {
                icmp_type,
                code,
                body,
            } => {
                out.push(*icmp_type);
                out.push(*code);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(body);
            }
        }
        let mut c = Checksum::new();
        c.add_bytes(&out);
        let ck = c.finish();
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Build the reply this message demands, or `None` if it isn't an echo
    /// request.
    pub fn reply(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::Echo {
                ident,
                seq,
                payload,
            } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let m = IcmpMessage::Echo {
            ident: 1234,
            seq: 9,
            payload: vec![7u8; 56],
        };
        let wire = m.emit();
        assert_eq!(IcmpMessage::parse(&wire).unwrap(), m);
    }

    #[test]
    fn reply_mirrors_request() {
        let m = IcmpMessage::Echo {
            ident: 42,
            seq: 3,
            payload: b"timestamp".to_vec(),
        };
        let r = m.reply().unwrap();
        match r {
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                assert_eq!((ident, seq), (42, 3));
                assert_eq!(payload, b"timestamp");
            }
            _ => panic!("expected reply"),
        }
        assert!(m.reply().unwrap().reply().is_none());
    }

    #[test]
    fn corrupted_rejected() {
        let mut wire = IcmpMessage::Echo {
            ident: 1,
            seq: 1,
            payload: vec![0; 8],
        }
        .emit();
        wire[9] ^= 0x55;
        assert!(matches!(
            IcmpMessage::parse(&wire),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn other_types_preserved() {
        let m = IcmpMessage::Other {
            icmp_type: 3,
            code: 1,
            body: vec![0, 0, 0, 0, 0xde, 0xad],
        };
        let wire = m.emit();
        assert_eq!(IcmpMessage::parse(&wire).unwrap(), m);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            IcmpMessage::parse(&[8, 0, 0]),
            Err(ParseError::Truncated { .. })
        ));
    }
}
