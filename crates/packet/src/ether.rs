//! Ethernet II framing.

use crate::error::{ParseError, Result};
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Locally-administered address derived from a small integer; used to
    /// hand out distinct MACs to simulated hosts.
    pub fn local(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values we speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(v) => v,
        }
    }
}

/// An Ethernet II header (no FCS; the simulator models corruption as loss,
/// exactly as the paper's model assumes "corrupt packets are coerced to
/// lost ones").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

/// Length of the Ethernet II header in bytes.
pub const ETHER_HEADER_LEN: usize = 14;

impl EtherHeader {
    /// Parse a header, returning it and the payload slice.
    pub fn parse(data: &[u8]) -> Result<(EtherHeader, &[u8])> {
        if data.len() < ETHER_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: ETHER_HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]).into();
        Ok((
            EtherHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            &data[ETHER_HEADER_LEN..],
        ))
    }

    /// Serialize the header followed by `payload`.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHER_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EtherHeader {
            dst: MacAddr::local(7),
            src: MacAddr::local(9),
            ethertype: EtherType::Ipv4,
        };
        let wire = h.emit(b"hello");
        let (parsed, payload) = EtherHeader::parse(&wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EtherHeader::parse(&[0u8; 13]),
            Err(ParseError::Truncated {
                needed: 14,
                got: 13
            })
        );
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(u16::from(EtherType::Other(0x86dd)), 0x86dd);
    }

    #[test]
    fn mac_display_and_helpers() {
        assert_eq!(format!("{}", MacAddr::local(1)), "02:00:00:00:00:01");
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::local(1).is_broadcast());
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
    }
}
