//! IPv4 header codec (no options on emit; options skipped on parse).

use crate::checksum::{checksum, Checksum};
use crate::error::{ParseError, Result};
use std::net::Ipv4Addr;

/// IP protocol numbers we speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// Minimum (and emitted) IPv4 header length.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Carried protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by tracing and reassembly to correlate
    /// packets/fragments).
    pub ident: u16,
    /// Total length (header + payload) as carried on the wire.
    pub total_len: u16,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
}

impl Ipv4Header {
    /// Is this datagram a fragment (either not the last, or offset > 0)?
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }
}

impl Ipv4Header {
    /// Parse a header, verifying version, length, and checksum; returns the
    /// header and the payload slice (trimmed to `total_len`).
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, &[u8])> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: IPV4_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion(version));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if !(IPV4_HEADER_LEN..=60).contains(&ihl) || data.len() < ihl {
            return Err(ParseError::BadHeaderLen(data[0] & 0x0f));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(ParseError::BadLength {
                declared: total_len,
                available: data.len(),
            });
        }
        let computed = checksum(&data[..ihl]);
        if computed != 0 {
            return Err(ParseError::BadChecksum {
                expected: u16::from_be_bytes([data[10], data[11]]),
                computed,
            });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        let header = Ipv4Header {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: data[9].into(),
            ttl: data[8],
            ident: u16::from_be_bytes([data[4], data[5]]),
            total_len: total_len as u16,
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1FFF,
        };
        Ok((header, &data[ihl..total_len]))
    }

    /// Serialize a 20-byte header followed by `payload`, computing the
    /// header checksum and total length.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let total = IPV4_HEADER_LEN + payload.len();
        assert!(total <= u16::MAX as usize, "IPv4 datagram too large");
        let mut out = Vec::with_capacity(total);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        // Flags+fragment-offset: MF when more fragments follow; DF is
        // left clear so the stack may fragment large datagrams.
        let flags_frag =
            (if self.more_fragments { 0x2000u16 } else { 0 }) | (self.frag_offset & 0x1FFF);
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol.into());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let c = checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&c.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Start a transport checksum accumulator seeded with this header's
    /// pseudo-header for a transport payload of `len` bytes.
    pub fn pseudo_checksum(&self, len: u16) -> Checksum {
        let mut c = Checksum::new();
        c.add_pseudo_header(self.src, self.dst, self.protocol.into(), len);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(192, 168, 1, 10),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            protocol: IpProtocol::Udp,
            ttl: 64,
            ident: 0xbeef,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        }
    }

    #[test]
    fn fragment_fields_round_trip() {
        let mut h = header();
        h.more_fragments = true;
        h.frag_offset = 185; // ×8 = 1480 bytes
        let wire = h.emit(b"frag payload");
        let (parsed, _) = Ipv4Header::parse(&wire).unwrap();
        assert!(parsed.more_fragments);
        assert_eq!(parsed.frag_offset, 185);
        assert!(parsed.is_fragment());
        // Last fragment: MF clear but offset nonzero is still a fragment.
        h.more_fragments = false;
        let wire = h.emit(b"tail");
        let (parsed, _) = Ipv4Header::parse(&wire).unwrap();
        assert!(!parsed.more_fragments);
        assert!(parsed.is_fragment());
        assert!(!header().is_fragment());
    }

    #[test]
    fn round_trip() {
        let wire = header().emit(b"payload!");
        let (h, payload) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(h.src, Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(h.dst, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.protocol, IpProtocol::Udp);
        assert_eq!(h.ttl, 64);
        assert_eq!(h.ident, 0xbeef);
        assert_eq!(h.total_len as usize, 20 + 8);
        assert_eq!(payload, b"payload!");
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut wire = header().emit(b"x");
        wire[8] ^= 0xff; // flip TTL
        assert!(matches!(
            Ipv4Header::parse(&wire),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = header().emit(b"");
        wire[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&wire), Err(ParseError::BadVersion(6)));
    }

    #[test]
    fn padding_after_total_len_is_trimmed() {
        // Ethernet can pad short frames; payload must trim to total_len.
        let mut wire = header().emit(b"ab");
        wire.extend_from_slice(&[0u8; 10]);
        let (_, payload) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(payload, b"ab");
    }

    #[test]
    fn declared_longer_than_buffer_rejected() {
        let wire = header().emit(b"abcd");
        assert!(matches!(
            Ipv4Header::parse(&wire[..22]),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn protocol_mapping() {
        for (n, p) in [
            (1u8, IpProtocol::Icmp),
            (6, IpProtocol::Tcp),
            (17, IpProtocol::Udp),
            (89, IpProtocol::Other(89)),
        ] {
            assert_eq!(IpProtocol::from(n), p);
            assert_eq!(u8::from(p), n);
        }
    }
}
