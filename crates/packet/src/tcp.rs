//! TCP segment codec: fixed header, flags, window, checksum over the
//! pseudo-header, and the MSS option (the only option our 1997-era Reno
//! stack negotiates).

use crate::checksum::Checksum;
use crate::error::{ParseError, Result};
use std::fmt;
use std::net::Ipv4Addr;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// No more data from sender.
    pub fin: bool,
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
}

impl TcpFlags {
    /// A pure-ACK flag set.
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };
    /// A SYN flag set.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
            (self.psh, "PSH"),
        ] {
            if set {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// Fixed TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// A TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or the SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u16,
    /// Maximum segment size option, carried only on SYN segments.
    pub mss: Option<u16>,
}

impl TcpHeader {
    /// Length this header will occupy on the wire.
    pub fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    /// Parse a segment, verifying the checksum against the pseudo-header.
    /// Returns the header and payload.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(TcpHeader, &[u8])> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: TCP_HEADER_LEN,
                got: data.len(),
            });
        }
        let data_offset = (data[12] >> 4) as usize * 4;
        if !(TCP_HEADER_LEN..=60).contains(&data_offset) || data.len() < data_offset {
            return Err(ParseError::BadHeaderLen(data[12] >> 4));
        }
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, data.len() as u16);
        c.add_bytes(data);
        let computed = c.finish();
        if computed != 0 {
            return Err(ParseError::BadChecksum {
                expected: u16::from_be_bytes([data[16], data[17]]),
                computed,
            });
        }
        // Scan options for MSS (kind 2); skip the rest.
        let mut mss = None;
        let mut i = TCP_HEADER_LEN;
        while i < data_offset {
            match data[i] {
                0 => break,  // end of options
                1 => i += 1, // NOP
                2 if i + 4 <= data_offset => {
                    mss = Some(u16::from_be_bytes([data[i + 2], data[i + 3]]));
                    i += 4;
                }
                _ => {
                    // Generic option: kind, len, data.
                    if i + 1 >= data_offset {
                        break;
                    }
                    let l = data[i + 1] as usize;
                    if l < 2 {
                        break;
                    }
                    i += l;
                }
            }
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags::from_byte(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
                mss,
            },
            &data[data_offset..],
        ))
    }

    /// Serialize header + payload, computing the checksum.
    pub fn emit(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let hlen = self.wire_len();
        let total = hlen + payload.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((hlen / 4) as u8) << 4);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer (unused)
        if let Some(mss) = self.mss {
            out.push(2);
            out.push(4);
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, total as u16);
        c.add_bytes(&out);
        let ck = c.finish();
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn header() -> TcpHeader {
        TcpHeader {
            src_port: 20,
            dst_port: 54321,
            seq: 0x11223344,
            ack: 0x55667788,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 8760,
            mss: None,
        }
    }

    #[test]
    fn round_trip_plain() {
        let wire = header().emit(b"data bytes", SRC, DST);
        let (h, payload) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(h, header());
        assert_eq!(payload, b"data bytes");
    }

    #[test]
    fn round_trip_with_mss() {
        let mut h = header();
        h.flags = TcpFlags::SYN;
        h.mss = Some(1460);
        let wire = h.emit(b"", SRC, DST);
        assert_eq!(wire.len(), 24);
        let (parsed, payload) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert!(parsed.flags.syn);
        assert!(payload.is_empty());
    }

    #[test]
    fn corrupted_rejected() {
        let mut wire = header().emit(b"data", SRC, DST);
        wire[4] ^= 0x80; // flip a seq bit
        assert!(matches!(
            TcpHeader::parse(&wire, SRC, DST),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_addresses_rejected() {
        let wire = header().emit(b"data", SRC, DST);
        // Note: swapping src/dst does NOT fail (ones-complement addition
        // commutes); a genuinely different address must.
        assert!(matches!(
            TcpHeader::parse(&wire, SRC, Ipv4Addr::new(10, 0, 9, 9)),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn flags_round_trip() {
        for b in 0..32u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
        assert_eq!(format!("{}", TcpFlags::SYN), "SYN");
        assert_eq!(
            format!(
                "{}",
                TcpFlags {
                    syn: true,
                    ack: true,
                    ..Default::default()
                }
            ),
            "SYN|ACK"
        );
        assert_eq!(format!("{}", TcpFlags::default()), "-");
    }

    #[test]
    fn nop_options_skipped() {
        // Hand-build a header with NOP,NOP,MSS to test option walking.
        let mut h = header();
        h.mss = Some(536);
        let mut wire = h.emit(b"", SRC, DST);
        // Replace MSS option with NOP NOP + MSS shifted? Simpler: verify
        // parse of the emitted wire sees the MSS.
        let (parsed, _) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed.mss, Some(536));
        // Corrupt the option kind to an unknown one with valid length:
        wire[20] = 99; // kind
        wire[21] = 4; // len
                      // Fix the checksum by re-emitting through parse failure path:
                      // zero the checksum, recompute.
        wire[16] = 0;
        wire[17] = 0;
        let mut c = Checksum::new();
        c.add_pseudo_header(SRC, DST, 6, wire.len() as u16);
        c.add_bytes(&wire);
        let ck = c.finish();
        wire[16..18].copy_from_slice(&ck.to_be_bytes());
        let (parsed, _) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed.mss, None);
    }
}
