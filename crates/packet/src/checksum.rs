//! The Internet checksum (RFC 1071) used by IPv4, ICMP, UDP, and TCP.

use std::net::Ipv4Addr;

/// Incremental ones-complement sum accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Fold a byte slice into the sum. Odd-length slices are padded with a
    /// trailing zero byte, per RFC 1071. Slices must be fed on the same
    /// 16-bit alignment they occupy in the packet (all our callers feed
    /// even-length prefixes, so this holds).
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Fold a single big-endian 16-bit word into the sum.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Fold the TCP/UDP pseudo-header: src, dst, zero+protocol, length.
    pub fn add_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) {
        self.add_bytes(&src.octets());
        self.add_bytes(&dst.octets());
        self.add_u16(u16::from(protocol));
        self.add_u16(len);
    }

    /// Finish: fold carries and complement.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: summing the
/// whole buffer must produce zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_round_trip() {
        let mut pkt = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        pkt.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let c = checksum(&pkt);
        pkt[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[4] ^= 0xff;
        assert!(!verify(&pkt));
    }

    #[test]
    fn pseudo_header_contributes() {
        let mut a = Checksum::new();
        a.add_pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        let mut b = Checksum::new();
        b.add_pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 3),
            17,
            8,
        );
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn all_zeros_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }
}
