//! UDP codec with pseudo-header checksums.

use crate::checksum::Checksum;
use crate::error::{ParseError, Result};
use std::net::Ipv4Addr;

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Parse a UDP datagram, verifying length and (if nonzero) checksum
    /// against the given pseudo-header addresses. Returns header + payload.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(UdpHeader, &[u8])> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: UDP_HEADER_LEN,
                got: data.len(),
            });
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < UDP_HEADER_LEN || len > data.len() {
            return Err(ParseError::BadLength {
                declared: len,
                available: data.len(),
            });
        }
        let wire_ck = u16::from_be_bytes([data[6], data[7]]);
        if wire_ck != 0 {
            let mut c = Checksum::new();
            c.add_pseudo_header(src, dst, 17, len as u16);
            c.add_bytes(&data[..len]);
            let computed = c.finish();
            if computed != 0 {
                return Err(ParseError::BadChecksum {
                    expected: wire_ck,
                    computed,
                });
            }
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
            },
            &data[UDP_HEADER_LEN..len],
        ))
    }

    /// Serialize header + payload, computing the checksum over the
    /// pseudo-header.
    pub fn emit(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = UDP_HEADER_LEN + payload.len();
        assert!(len <= u16::MAX as usize, "UDP datagram too large");
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 17, len as u16);
        c.add_bytes(&out);
        let mut ck = c.finish();
        if ck == 0 {
            ck = 0xffff; // RFC 768: zero means "no checksum"
        }
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn round_trip() {
        let h = UdpHeader {
            src_port: 5000,
            dst_port: 2049,
        };
        let wire = h.emit(b"rpc call", SRC, DST);
        let (parsed, payload) = UdpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"rpc call");
    }

    #[test]
    fn wrong_pseudo_header_rejected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let wire = h.emit(b"x", SRC, DST);
        assert!(matches!(
            UdpHeader::parse(&wire, SRC, Ipv4Addr::new(10, 0, 0, 3)),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupted_payload_rejected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut wire = h.emit(b"abcdef", SRC, DST);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(
            UdpHeader::parse(&wire, SRC, DST),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut wire = h.emit(b"abc", SRC, DST);
        wire[6] = 0;
        wire[7] = 0;
        assert!(UdpHeader::parse(&wire, SRC, DST).is_ok());
    }

    #[test]
    fn bad_length_rejected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut wire = h.emit(b"abc", SRC, DST);
        wire[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::parse(&wire, SRC, DST),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_payload_ok() {
        let h = UdpHeader {
            src_port: 9,
            dst_port: 10,
        };
        let wire = h.emit(b"", SRC, DST);
        let (_, payload) = UdpHeader::parse(&wire, SRC, DST).unwrap();
        assert!(payload.is_empty());
    }
}
