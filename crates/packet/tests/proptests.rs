//! Property-based round-trip tests for every codec: arbitrary field values
//! must survive emit → parse unchanged, and any single-bit corruption of a
//! checksummed region must be detected.

use packet::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(fin, syn, rst, psh, ack)| TcpFlags {
            fin,
            syn,
            rst,
            psh,
            ack,
        })
}

proptest! {
    #[test]
    fn ether_round_trip(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let h = EtherHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: ethertype.into(),
        };
        let wire = h.emit(&payload);
        let (parsed, body) = EtherHeader::parse(&wire).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn ipv4_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let h = Ipv4Header {
            src, dst,
            protocol: proto.into(),
            ttl, ident,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        };
        let wire = h.emit(&payload);
        let (parsed, body) = Ipv4Header::parse(&wire).unwrap();
        prop_assert_eq!(parsed.src, src);
        prop_assert_eq!(parsed.dst, dst);
        prop_assert_eq!(u8::from(parsed.protocol), proto);
        prop_assert_eq!(parsed.ttl, ttl);
        prop_assert_eq!(parsed.ident, ident);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn ipv4_bit_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        bit in 0usize..(20 * 8),
    ) {
        let h = Ipv4Header {
            src: Ipv4Addr::new(10, 1, 2, 3),
            dst: Ipv4Addr::new(10, 3, 2, 1),
            protocol: IpProtocol::Udp,
            ttl: 64,
            ident: 7,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        };
        let mut wire = h.emit(&payload);
        wire[bit / 8] ^= 1 << (bit % 8);
        // Any single-bit flip in the header must fail parsing (checksum,
        // version, length, or header-len check).
        prop_assert!(Ipv4Header::parse(&wire).is_err());
    }

    #[test]
    fn icmp_round_trip(
        ident in any::<u16>(),
        seq in any::<u16>(),
        is_reply in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let m = if is_reply {
            IcmpMessage::EchoReply { ident, seq, payload }
        } else {
            IcmpMessage::Echo { ident, seq, payload }
        };
        let wire = m.emit();
        prop_assert_eq!(IcmpMessage::parse(&wire).unwrap(), m);
    }

    #[test]
    fn udp_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let h = UdpHeader { src_port: sp, dst_port: dp };
        let wire = h.emit(&payload, src, dst);
        let (parsed, body) = UdpHeader::parse(&wire, src, dst).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn udp_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<proptest::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let h = UdpHeader { src_port: 40000, dst_port: 2049 };
        let mut wire = h.emit(&payload, src, dst);
        let i = idx.index(wire.len());
        // Skip flips that only touch the length field's high bits in ways
        // that still parse — we corrupt anywhere and expect *an* error of
        // some kind (checksum or length), unless the flip lands on the
        // checksum making it zero (the "no checksum" sentinel), which a
        // 1-bit flip of a valid nonzero checksum cannot produce both bytes
        // of. Flipping byte 6 or 7 alone cannot zero both.
        wire[i] ^= mask;
        if wire[6] == 0 && wire[7] == 0 {
            // Checksum field became the "absent" sentinel; parsing may
            // succeed. Skip this rare case.
            return Ok(());
        }
        prop_assert!(UdpHeader::parse(&wire, src, dst).is_err());
    }

    #[test]
    fn tcp_round_trip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        window in any::<u16>(),
        mss in proptest::option::of(any::<u16>()),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let h = TcpHeader { src_port: sp, dst_port: dp, seq, ack, flags, window, mss };
        let wire = h.emit(&payload, src, dst);
        prop_assert_eq!(wire.len(), h.wire_len() + payload.len());
        let (parsed, body) = TcpHeader::parse(&wire, src, dst).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn tcp_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<proptest::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let h = TcpHeader {
            src_port: 20, dst_port: 1234,
            seq: 1, ack: 2,
            flags: TcpFlags::ACK, window: 4096, mss: None,
        };
        let mut wire = h.emit(&payload, src, dst);
        let i = idx.index(wire.len());
        wire[i] ^= mask;
        prop_assert!(TcpHeader::parse(&wire, src, dst).is_err());
    }

    #[test]
    fn full_stack_round_trip(
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = Ipv4Addr::new(192, 168, 0, 1);
        let dst = Ipv4Addr::new(192, 168, 0, 2);
        let udp = UdpHeader { src_port: sp, dst_port: dp }.emit(&payload, src, dst);
        let ip = Ipv4Header {
            src, dst,
            protocol: IpProtocol::Udp,
            ttl: 64,
            ident: 99,
            total_len: 0,
            more_fragments: false,
            frag_offset: 0,
        }.emit(&udp);
        let frame = EtherHeader {
            dst: MacAddr::local(2),
            src: MacAddr::local(1),
            ethertype: EtherType::Ipv4,
        }.emit(&ip);
        prop_assert_eq!(frame.len(), udp_frame_len(payload.len()));

        let (eh, l3) = EtherHeader::parse(&frame).unwrap();
        prop_assert_eq!(eh.ethertype, EtherType::Ipv4);
        let (ih, l4) = Ipv4Header::parse(l3).unwrap();
        prop_assert_eq!(ih.protocol, IpProtocol::Udp);
        let (uh, body) = UdpHeader::parse(l4, ih.src, ih.dst).unwrap();
        prop_assert_eq!(uh.src_port, sp);
        prop_assert_eq!(uh.dst_port, dp);
        prop_assert_eq!(body, &payload[..]);
    }
}
