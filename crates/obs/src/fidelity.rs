//! Emulation-fidelity self-checks.
//!
//! The paper validates modulation by comparing benchmark results on the
//! real and emulated networks (§5). This module distills that
//! methodology into an always-on per-run health signal measured inside
//! the modulation layer itself:
//!
//! * **delay error** — per released packet, the actual (virtual-time)
//!   release minus the model's intended due time, i.e. the combined
//!   quantization and scheduling error of the emulation (the paper's
//!   §5.4 under-delay artifact made measurable);
//! * **deadline misses** — packets released after their quantized due
//!   time (the kernel timer fired late);
//! * **drift-compensation corrections** — monotone-release clamps,
//!   where a shrinking tuple delay would have reordered a direction;
//! * **loss delta** — observed drop rate minus the replay trace's
//!   expected loss probability over the same packets.

use crate::metrics::{Hist, HistSnapshot};
use netsim::stats::Summary;
use serde::{Deserialize, Serialize};

/// Histogram range for signed delay error, in milliseconds. ±25 ms
/// comfortably brackets the ±half-tick quantization of a 10 ms clock.
const DELAY_ERR_RANGE_MS: f64 = 25.0;
const DELAY_ERR_BINS: usize = 50;

/// Accumulates fidelity evidence inside the modulation layer.
///
/// All inputs are derived from virtual time and per-cell RNG streams,
/// so the resulting [`FidelityReport`] is bitwise deterministic.
#[derive(Debug, Clone)]
pub struct FidelityCollector {
    delay_error_ms: Hist,
    abs_error_ms: Summary,
    abs_error_total_ns: u64,
    deadline_misses: u64,
    drift_clamps: u64,
    compensated: u64,
    expected_loss_sum: f64,
    modulated: u64,
    dropped: u64,
    unmodulated: u64,
    released: u64,
    starvation_holds: u64,
    starvation_saturated: bool,
}

impl Default for FidelityCollector {
    fn default() -> Self {
        FidelityCollector::new()
    }
}

impl FidelityCollector {
    /// An empty collector.
    pub fn new() -> Self {
        FidelityCollector {
            delay_error_ms: Hist::new(-DELAY_ERR_RANGE_MS, DELAY_ERR_RANGE_MS, DELAY_ERR_BINS),
            abs_error_ms: Summary::keeping_samples(),
            abs_error_total_ns: 0,
            deadline_misses: 0,
            drift_clamps: 0,
            compensated: 0,
            expected_loss_sum: 0.0,
            modulated: 0,
            dropped: 0,
            unmodulated: 0,
            released: 0,
            starvation_holds: 0,
            starvation_saturated: false,
        }
    }

    /// A packet passed through with no tuple available.
    pub fn on_unmodulated(&mut self) {
        self.unmodulated += 1;
    }

    /// A packet entered the modulation process under a tuple whose loss
    /// probability is `expected_loss`.
    pub fn on_modulated(&mut self, expected_loss: f64) {
        self.modulated += 1;
        self.expected_loss_sum += expected_loss;
    }

    /// The loss process dropped the packet.
    pub fn on_drop(&mut self) {
        self.dropped += 1;
    }

    /// A release was clamped to keep per-direction order monotone.
    pub fn on_drift_clamp(&mut self) {
        self.drift_clamps += 1;
    }

    /// Inbound delay compensation reduced this packet's `Vb`.
    pub fn on_compensated(&mut self) {
        self.compensated += 1;
    }

    /// The live tuple feed starved: the modulator held its last tuple
    /// past its duration and backed off. One call per backoff window.
    /// Transient holds are inherent to streaming distillation (the
    /// tuple stream trails collection by the reorder horizon), so holds
    /// alone do not mark the run degraded — see
    /// [`on_starvation_saturated`](Self::on_starvation_saturated).
    pub fn on_starvation_hold(&mut self) {
        self.starvation_holds += 1;
    }

    /// Feed starvation persisted long enough for the hold backoff to
    /// saturate at its cap: the modulator replayed stale network
    /// quality for a sustained stretch. Marks the run `degraded`.
    pub fn on_starvation_saturated(&mut self) {
        self.starvation_saturated = true;
    }

    /// A modulated packet was released (immediately or from the hold
    /// queue). `error_ms` is actual release time minus the model's
    /// intended due time, in milliseconds (negative = under-delay);
    /// `missed_deadline` marks a release after its quantized due time.
    pub fn on_release(&mut self, error_ms: f64, missed_deadline: bool) {
        self.released += 1;
        self.delay_error_ms.observe(error_ms);
        self.abs_error_ms.add(error_ms.abs());
        // `as` saturates on overflow/NaN; saturating_add keeps the
        // accumulator well-defined under pathological error magnitudes.
        self.abs_error_total_ns = self
            .abs_error_total_ns
            .saturating_add((error_ms.abs() * 1e6) as u64);
        if missed_deadline {
            self.deadline_misses += 1;
        }
    }

    /// Packets that entered the modulation process so far.
    pub fn modulated(&self) -> u64 {
        self.modulated
    }

    /// Telemetry readout: `(released_packets, Σ|delay error| in
    /// integer ns)`. Integer so shard telemetry sums merge exactly;
    /// cheap (two loads) so the fleet sampler can poll it every
    /// boundary without touching percentile math.
    pub fn error_accum(&self) -> (u64, u64) {
        (self.released, self.abs_error_total_ns)
    }

    /// `true` once sustained feed starvation has marked the run
    /// degraded (cheap flag read; the full report recomputation is
    /// not needed on the telemetry sampling path).
    pub fn is_degraded(&self) -> bool {
        self.starvation_saturated
    }

    /// Snapshot the evidence into a report.
    pub fn report(&self) -> FidelityReport {
        let released = self.released.max(1) as f64;
        let offered = (self.modulated + self.unmodulated).max(1) as f64;
        let expected_loss_rate = if self.modulated == 0 {
            0.0
        } else {
            self.expected_loss_sum / self.modulated as f64
        };
        let observed_loss_rate = if self.modulated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.modulated as f64
        };
        FidelityReport {
            modulated_packets: self.modulated,
            unmodulated_packets: self.unmodulated,
            dropped_packets: self.dropped,
            released_packets: self.released,
            delay_error_ms: self.delay_error_ms.snapshot(),
            abs_delay_error_p50_ms: self.abs_error_ms.p50(),
            abs_delay_error_p95_ms: self.abs_error_ms.p95(),
            abs_delay_error_p99_ms: self.abs_error_ms.p99(),
            deadline_misses: self.deadline_misses,
            deadline_miss_rate: self.deadline_misses as f64 / released,
            drift_clamps: self.drift_clamps,
            compensated_packets: self.compensated,
            expected_loss_rate,
            observed_loss_rate,
            loss_delta: observed_loss_rate - expected_loss_rate,
            unmodulated_fraction: self.unmodulated as f64 / offered,
            starvation_holds: self.starvation_holds,
            degraded: self.starvation_saturated,
        }
    }
}

/// The fidelity self-check section of a run manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Packets that entered the modulation process (had a tuple).
    pub modulated_packets: u64,
    /// Packets passed through before any tuple was available.
    pub unmodulated_packets: u64,
    /// Packets dropped by the loss process.
    pub dropped_packets: u64,
    /// Modulated packets released (immediately or after a hold).
    pub released_packets: u64,
    /// Signed intended-vs-actual delay error per released packet (ms;
    /// negative = released early / under-delayed).
    pub delay_error_ms: HistSnapshot,
    /// Median of |delay error| (ms).
    pub abs_delay_error_p50_ms: f64,
    /// 95th percentile of |delay error| (ms).
    pub abs_delay_error_p95_ms: f64,
    /// 99th percentile of |delay error| (ms).
    pub abs_delay_error_p99_ms: f64,
    /// Releases later than their quantized due time.
    pub deadline_misses: u64,
    /// `deadline_misses / released_packets`.
    pub deadline_miss_rate: f64,
    /// Monotone-release clamps (drift-compensation corrections).
    pub drift_clamps: u64,
    /// Inbound packets whose `Vb` was reduced by delay compensation.
    pub compensated_packets: u64,
    /// Mean tuple loss probability over modulated packets.
    pub expected_loss_rate: f64,
    /// Observed drop rate over modulated packets.
    pub observed_loss_rate: f64,
    /// `observed_loss_rate − expected_loss_rate`.
    pub loss_delta: f64,
    /// Fraction of offered packets that went unmodulated.
    pub unmodulated_fraction: f64,
    /// Feed-starvation backoff windows: times the modulator held its
    /// last tuple past its duration because the live feed had nothing.
    #[serde(default)]
    pub starvation_holds: u64,
    /// The run degraded gracefully instead of failing: stale network
    /// quality was replayed during *sustained* feed starvation (the
    /// hold backoff saturated at its cap). Transient starvation only
    /// bumps `starvation_holds`.
    #[serde(default)]
    pub degraded: bool,
}

impl FidelityReport {
    /// A report with no evidence (all zero).
    pub fn empty() -> Self {
        FidelityCollector::new().report()
    }

    /// Check against thresholds; returns human-readable violations
    /// (empty = pass).
    pub fn check(&self, th: &FidelityThresholds) -> Vec<String> {
        let mut out = Vec::new();
        if self.abs_delay_error_p95_ms > th.max_abs_delay_error_p95_ms {
            out.push(format!(
                "delay-error p95 {:.2} ms exceeds {:.2} ms",
                self.abs_delay_error_p95_ms, th.max_abs_delay_error_p95_ms
            ));
        }
        if self.deadline_miss_rate > th.max_deadline_miss_rate {
            out.push(format!(
                "deadline-miss rate {:.4} exceeds {:.4}",
                self.deadline_miss_rate, th.max_deadline_miss_rate
            ));
        }
        if self.modulated_packets >= th.min_loss_samples
            && self.loss_delta.abs() > th.max_abs_loss_delta
        {
            out.push(format!(
                "loss delta {:+.4} exceeds ±{:.4} (expected {:.4}, observed {:.4})",
                self.loss_delta,
                th.max_abs_loss_delta,
                self.expected_loss_rate,
                self.observed_loss_rate
            ));
        }
        if self.unmodulated_fraction > th.max_unmodulated_fraction {
            out.push(format!(
                "unmodulated fraction {:.3} exceeds {:.3}",
                self.unmodulated_fraction, th.max_unmodulated_fraction
            ));
        }
        out
    }
}

/// Regression thresholds for [`FidelityReport::check`] (the CI gate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityThresholds {
    /// Maximum allowed p95 of |delay error| in ms. The default (8 ms)
    /// brackets the ±half-tick rounding of the 10 ms NetBSD clock plus
    /// scheduling slack.
    pub max_abs_delay_error_p95_ms: f64,
    /// Maximum allowed deadline-miss rate.
    pub max_deadline_miss_rate: f64,
    /// Maximum allowed |loss delta|.
    pub max_abs_loss_delta: f64,
    /// Loss delta is only gated once this many packets were modulated
    /// (below that, binomial noise dominates).
    pub min_loss_samples: u64,
    /// Maximum allowed unmodulated fraction.
    pub max_unmodulated_fraction: f64,
}

impl Default for FidelityThresholds {
    fn default() -> Self {
        FidelityThresholds {
            max_abs_delay_error_p95_ms: 8.0,
            max_deadline_miss_rate: 0.05,
            max_abs_loss_delta: 0.05,
            min_loss_samples: 200,
            max_unmodulated_fraction: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes_default_thresholds() {
        let mut c = FidelityCollector::new();
        for i in 0..500 {
            c.on_modulated(0.02);
            // Quantization error within ±5 ms.
            c.on_release((i % 10) as f64 - 4.5, false);
        }
        for _ in 0..10 {
            c.on_modulated(0.02);
            c.on_drop();
        }
        let r = c.report();
        assert_eq!(r.modulated_packets, 510);
        assert!(r.abs_delay_error_p95_ms <= 5.0);
        assert!((r.observed_loss_rate - 10.0 / 510.0).abs() < 1e-12);
        assert!(r.check(&FidelityThresholds::default()).is_empty());
    }

    #[test]
    fn violations_are_reported() {
        let mut c = FidelityCollector::new();
        for _ in 0..300 {
            c.on_modulated(0.01);
            c.on_release(20.0, true); // way past the tick
        }
        for _ in 0..60 {
            c.on_modulated(0.01);
            c.on_drop();
        }
        let r = c.report();
        let v = r.check(&FidelityThresholds::default());
        assert_eq!(v.len(), 3, "{v:?}"); // delay, deadline, loss
        assert!(v[0].contains("delay-error"));
    }

    #[test]
    fn loss_gate_needs_samples() {
        let mut c = FidelityCollector::new();
        for _ in 0..10 {
            c.on_modulated(0.0);
            c.on_drop();
        }
        // Observed 100% loss vs expected 0%, but only 10 packets:
        // the loss gate stays silent.
        let r = c.report();
        let v = r.check(&FidelityThresholds::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn starvation_marks_run_degraded() {
        let mut c = FidelityCollector::new();
        c.on_modulated(0.0);
        c.on_release(0.0, false);
        let clean = c.report();
        assert!(!clean.degraded);
        assert_eq!(clean.starvation_holds, 0);
        // Transient starvation: counted but not degraded — the tuple
        // stream inherently trails collection by the reorder horizon.
        c.on_starvation_hold();
        c.on_starvation_hold();
        let r = c.report();
        assert!(!r.degraded);
        assert_eq!(r.starvation_holds, 2);
        // Sustained starvation (backoff saturated) marks degradation.
        c.on_starvation_hold();
        c.on_starvation_saturated();
        let r = c.report();
        assert!(r.degraded);
        assert_eq!(r.starvation_holds, 3);
        // Degradation is surfaced, not gated: default thresholds still
        // judge the run on its release precision.
        assert!(r.check(&FidelityThresholds::default()).is_empty());
    }

    #[test]
    fn error_accum_tracks_integer_ns_sum() {
        let mut c = FidelityCollector::new();
        assert_eq!(c.error_accum(), (0, 0));
        c.on_modulated(0.0);
        c.on_release(-2.0, false);
        c.on_modulated(0.0);
        c.on_release(1.5, false);
        assert_eq!(c.error_accum(), (2, 3_500_000));
        assert!(!c.is_degraded());
        c.on_starvation_saturated();
        assert!(c.is_degraded());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut c = FidelityCollector::new();
        c.on_modulated(0.1);
        c.on_drift_clamp();
        c.on_compensated();
        c.on_release(-2.0, false);
        c.on_unmodulated();
        let r = c.report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: FidelityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.drift_clamps, 1);
        assert_eq!(back.compensated_packets, 1);
    }
}
