//! The fleet telemetry plane: live virtual-time series and top-K
//! outliers for long-running fleet runs.
//!
//! `obs::fleet::FleetReport` is post-hoc — at 10k clients and ~1M
//! events/s a run that degrades 30 s in is invisible until it ends.
//! This module adds the in-flight signal: each fleet shard owns a
//! [`ShardTelemetry`] that is sampled on a configurable **virtual-time**
//! interval into a bounded time-series ring of [`SamplePoint`] rows
//! (events/s, queue depth, packet-store occupancy, modulation hold
//! depth, per-interval release/error tallies), plus a space-saving
//! [`TopK`] tracker surfacing the worst per-client p95 RTTs as the run
//! progresses.
//!
//! **Determinism.** Sampling is keyed to virtual time with a strict
//! boundary rule — the sample at boundary `t` reflects exactly the
//! events with due time `< t` — so a client contributes identically to
//! a sample no matter which shard simulates it. Every series field is
//! an integer (counts, or nanosecond sums); integer addition is
//! associative, so per-shard rows merged by summation in plan order
//! ([`FleetTelemetry::merge`]) are **byte-identical** at 1, 2, or 8
//! shards — the same invariance contract the fleet manifests carry.
//! Floating-point derived values (means, rates) are computed only at
//! render time from the merged integers.
//!
//! Exports: JSONL time-series ([`FleetTelemetry::to_jsonl`]), a
//! Prometheus-style text exposition ([`FleetTelemetry::to_prometheus`]),
//! and a markdown sparkline/table section
//! ([`FleetTelemetry::render_markdown_section`]) shared with
//! `tracemod obs-report --format md`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Telemetry schema version, bumped on incompatible layout changes.
pub const TELEMETRY_SCHEMA: u32 = 1;

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Maximum sparkline width in the markdown renderer; longer series are
/// decimated by bucket-mean.
const SPARK_WIDTH: usize = 48;

/// Configuration for the fleet telemetry plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Virtual-time sampling interval in nanoseconds.
    pub interval_ns: u64,
    /// Bounded series-ring capacity (oldest rows evict first).
    pub ring_capacity: usize,
    /// Outlier entries kept per top-K tracker.
    pub top_k: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_ns: 1_000_000_000,
            ring_capacity: 512,
            top_k: 8,
        }
    }
}

impl TelemetryConfig {
    /// Set the sampling interval in whole virtual seconds.
    pub fn with_interval_secs(mut self, secs: u64) -> Self {
        assert!(secs > 0, "telemetry interval must be positive");
        self.interval_ns = secs * 1_000_000_000;
        self
    }

    /// Set the series-ring capacity.
    pub fn with_ring_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "telemetry ring needs at least one slot");
        self.ring_capacity = cap;
        self
    }
}

/// One merged telemetry row: the fleet's state at virtual boundary
/// `t_ns`. Every field is an integer so shard rows merge exactly;
/// `events`, the tallies, and the error sum are **interval deltas**,
/// the depth fields are instantaneous at the boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Virtual boundary time (ns); the row covers `(t_ns - interval, t_ns]`
    /// for deltas, exclusive of events due exactly at `t_ns`.
    pub t_ns: u64,
    /// Engine events dispatched in the interval.
    pub events: u64,
    /// Engine events pending at the boundary.
    pub queue_depth: u64,
    /// Packet-store rows in flight at the boundary.
    pub packets_live: u64,
    /// Packets held across all modulation wheels at the boundary.
    pub mod_held: u64,
    /// Probes emitted in the interval.
    pub probes_sent: u64,
    /// Round trips completed in the interval.
    pub rtts_completed: u64,
    /// Packets lost to the loss processes in the interval.
    pub packets_lost: u64,
    /// Modulated releases in the interval.
    pub released: u64,
    /// Integer-ns sum of |intended − actual| release delay error over
    /// the interval's releases (divide by `released` for the mean).
    pub abs_delay_error_ns: u64,
    /// Frames forwarded through base stations in the interval.
    pub station_frames: u64,
    /// Clients whose modulator has marked itself degraded, cumulative
    /// at the boundary.
    pub degraded_clients: u64,
}

impl SamplePoint {
    /// Mean |release delay error| over the interval, in milliseconds
    /// (0 when nothing was released).
    pub fn mean_abs_delay_error_ms(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            self.abs_delay_error_ns as f64 / self.released as f64 / 1e6
        }
    }

    /// Sum every count into `self` (all fields except `t_ns`, which
    /// must already agree).
    fn absorb(&mut self, other: &SamplePoint) {
        debug_assert_eq!(
            self.t_ns, other.t_ns,
            "merging rows from different boundaries"
        );
        self.events += other.events;
        self.queue_depth += other.queue_depth;
        self.packets_live += other.packets_live;
        self.mod_held += other.mod_held;
        self.probes_sent += other.probes_sent;
        self.rtts_completed += other.rtts_completed;
        self.packets_lost += other.packets_lost;
        self.released += other.released;
        self.abs_delay_error_ns += other.abs_delay_error_ns;
        self.station_frames += other.station_frames;
        self.degraded_clients += other.degraded_clients;
    }
}

/// Cumulative totals a shard reads out at a sample boundary; the ring
/// differences consecutive readings into interval rows. Counter-like
/// fields are running totals; `queue_depth`, `packets_live`, and
/// `mod_held` are instantaneous.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleInputs {
    /// Engine events dispatched so far.
    pub events: u64,
    /// Engine events pending right now.
    pub queue_depth: u64,
    /// Packet-store rows in flight right now.
    pub packets_live: u64,
    /// Packets held in modulation wheels right now.
    pub mod_held: u64,
    /// Probes emitted so far.
    pub probes_sent: u64,
    /// Round trips completed so far.
    pub rtts_completed: u64,
    /// Packets lost so far.
    pub packets_lost: u64,
    /// Modulated releases so far.
    pub released: u64,
    /// Integer-ns |delay error| sum so far.
    pub abs_delay_error_ns: u64,
    /// Station frames forwarded so far.
    pub station_frames: u64,
    /// Clients currently marked degraded.
    pub degraded_clients: u64,
}

/// One shard's telemetry: a bounded virtual-time series ring plus a
/// top-K tracker of the shard's worst clients. Owned single-threaded
/// by the shard's engine loop — recording is a handful of integer
/// subtractions per boundary, nothing on the per-event hot path.
#[derive(Debug, Clone)]
pub struct ShardTelemetry {
    cfg: TelemetryConfig,
    prev: SampleInputs,
    ring: VecDeque<SamplePoint>,
    evicted: u64,
    worst_clients: TopK,
}

impl ShardTelemetry {
    /// An empty ring under `cfg`.
    pub fn new(cfg: TelemetryConfig) -> Self {
        ShardTelemetry {
            cfg,
            prev: SampleInputs::default(),
            ring: VecDeque::with_capacity(cfg.ring_capacity.min(1024)),
            evicted: 0,
            worst_clients: TopK::new(cfg.top_k),
        }
    }

    /// The configured sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.cfg.interval_ns
    }

    /// Record the boundary at virtual time `t_ns` from cumulative
    /// readings, differencing counters against the previous boundary.
    pub fn sample(&mut self, t_ns: u64, cur: SampleInputs) {
        let p = &self.prev;
        let row = SamplePoint {
            t_ns,
            events: cur.events - p.events,
            queue_depth: cur.queue_depth,
            packets_live: cur.packets_live,
            mod_held: cur.mod_held,
            probes_sent: cur.probes_sent - p.probes_sent,
            rtts_completed: cur.rtts_completed - p.rtts_completed,
            packets_lost: cur.packets_lost - p.packets_lost,
            released: cur.released - p.released,
            abs_delay_error_ns: cur.abs_delay_error_ns - p.abs_delay_error_ns,
            station_frames: cur.station_frames - p.station_frames,
            degraded_clients: cur.degraded_clients,
        };
        if self.ring.len() == self.cfg.ring_capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(row);
        self.prev = cur;
    }

    /// Record a finished client's p95 RTT (microseconds) into the
    /// shard's worst-client tracker.
    pub fn note_client_p95(&mut self, client: u32, p95_rtt_us: u64) {
        self.worst_clients.offer_max(u64::from(client), p95_rtt_us);
    }

    /// Rows currently retained, oldest first.
    pub fn series(&self) -> impl Iterator<Item = &SamplePoint> {
        self.ring.iter()
    }

    /// Rows evicted by the bounded ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The shard's worst-client tracker.
    pub fn worst_clients(&self) -> &TopK {
        &self.worst_clients
    }
}

/// One tracked outlier: a key (client or station index) and its
/// weight, plus the space-saving overestimation bound (`error` is 0
/// for exact entries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopEntry {
    /// Tracked key (client index, station index, ...).
    pub key: u64,
    /// The entry's weight: a score for `offer_max` streams, an
    /// estimated count for `add` streams.
    pub weight: u64,
    /// Space-saving overestimation bound (`add` streams only; an entry
    /// counted from its first occurrence has error 0).
    pub error: u64,
}

/// A bounded top-K tracker in the space-saving family (Metwally,
/// Agrawal, El Abbadi, 2005): at most `capacity` monitored entries;
/// when full, the minimum entry is evicted and — for the counting
/// [`add`](TopK::add) stream — its weight carries into the newcomer as
/// an error bound.
///
/// Two feeding modes:
/// * [`add`](TopK::add) — classic space-saving frequency counting with
///   error carry, for unbounded key streams;
/// * [`offer_max`](TopK::offer_max) — keep the K largest scores with
///   no carry. For offer-once streams (each key offered exactly once,
///   e.g. a client's final p95) the result is the **exact** top K and
///   is independent of offer order — which is what lets per-shard
///   trackers merge into a layout-invariant fleet view.
///
/// All ordering is deterministic: entries compare by `(weight, key)`
/// with ties broken toward the **smaller key** (the smaller key ranks
/// higher and survives eviction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopK {
    capacity: u64,
    entries: Vec<TopEntry>,
}

impl TopK {
    /// An empty tracker keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-K tracker needs capacity >= 1");
        TopK {
            capacity: capacity as u64,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// `true` when `a` outranks `b` (strictly greater weight, or equal
    /// weight and smaller key).
    fn beats(a: (u64, u64), b: (u64, u64)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    /// Index of the lowest-ranked entry (smallest weight; among equal
    /// weights, the largest key — the one eviction removes first).
    fn min_index(&self) -> usize {
        let mut min = 0;
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            let m = &self.entries[min];
            if Self::beats((m.weight, m.key), (e.weight, e.key)) {
                min = i;
            }
        }
        min
    }

    /// Space-saving frequency update: add `weight` to `key`'s entry,
    /// inserting it (evicting the minimum, carrying its weight as the
    /// newcomer's error bound) when unmonitored.
    pub fn add(&mut self, key: u64, weight: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.weight += weight;
            return;
        }
        if (self.entries.len() as u64) < self.capacity {
            self.entries.push(TopEntry {
                key,
                weight,
                error: 0,
            });
            return;
        }
        let i = self.min_index();
        let floor = self.entries[i].weight;
        self.entries[i] = TopEntry {
            key,
            weight: floor + weight,
            error: floor,
        };
    }

    /// Score update: keep `key` at the maximum `score` seen, admitting
    /// it only if it outranks the current minimum when full. No error
    /// carry — exact for offer-once streams.
    pub fn offer_max(&mut self, key: u64, score: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.weight = e.weight.max(score);
            return;
        }
        if (self.entries.len() as u64) < self.capacity {
            self.entries.push(TopEntry {
                key,
                weight: score,
                error: 0,
            });
            return;
        }
        let i = self.min_index();
        let m = &self.entries[i];
        if Self::beats((score, key), (m.weight, m.key)) {
            self.entries[i] = TopEntry {
                key,
                weight: score,
                error: 0,
            };
        }
    }

    /// Fold another tracker's entries into this one (score semantics:
    /// a key present in both keeps its maximum weight).
    pub fn merge_max(&mut self, other: &TopK) {
        for e in other.ranked() {
            self.offer_max(e.key, e.weight);
        }
    }

    /// Entries ranked highest first — weight descending, key ascending
    /// on ties. Deterministic for identical content however it was fed.
    pub fn ranked(&self) -> Vec<TopEntry> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.key.cmp(&b.key)));
        v
    }

    /// Number of monitored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The merged, serializable fleet telemetry: shard rings summed in
/// plan order plus the fleet-wide outlier trackers. Rides in the
/// fleet report (and its deterministic JSON) — every field derives
/// from simulation state, so it is byte-identical across shard
/// layouts and worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTelemetry {
    /// Schema version ([`TELEMETRY_SCHEMA`]).
    pub schema: u32,
    /// Virtual-time sampling interval (ns).
    pub interval_ns: u64,
    /// Rows evicted across all shard rings.
    pub evicted: u64,
    /// Merged series, oldest first.
    pub series: Vec<SamplePoint>,
    /// Worst per-client p95 RTT (weight = µs), ranked worst first.
    pub worst_clients: Vec<TopEntry>,
    /// Hottest stations (weight = frames forwarded), ranked first.
    pub hot_stations: Vec<TopEntry>,
}

impl FleetTelemetry {
    /// Merge per-shard telemetry **in plan order**: rows at the same
    /// boundary sum field-wise (all shards sample the same boundary
    /// set, so the rings align index for index), worst-client trackers
    /// fold under max semantics. Panics if shard rings disagree on
    /// interval or boundaries — that would mean the shards ran
    /// different plans.
    pub fn merge<'a>(shards: impl IntoIterator<Item = &'a ShardTelemetry>) -> FleetTelemetry {
        let mut out: Option<(FleetTelemetry, TopK)> = None;
        for shard in shards {
            match &mut out {
                None => {
                    let tel = FleetTelemetry {
                        schema: TELEMETRY_SCHEMA,
                        interval_ns: shard.cfg.interval_ns,
                        evicted: shard.evicted,
                        series: shard.series().copied().collect(),
                        worst_clients: Vec::new(),
                        hot_stations: Vec::new(),
                    };
                    out = Some((tel, shard.worst_clients.clone()));
                }
                Some((tel, worst)) => {
                    assert_eq!(
                        tel.interval_ns, shard.cfg.interval_ns,
                        "shards sampled on different intervals"
                    );
                    assert_eq!(
                        tel.series.len(),
                        shard.ring.len(),
                        "shard rings cover different boundary sets"
                    );
                    for (row, other) in tel.series.iter_mut().zip(shard.series()) {
                        assert_eq!(row.t_ns, other.t_ns, "shard boundary mismatch");
                        row.absorb(other);
                    }
                    tel.evicted += shard.evicted;
                    worst.merge_max(&shard.worst_clients);
                }
            }
        }
        let (mut tel, worst) = out.unwrap_or_else(|| {
            (
                FleetTelemetry {
                    schema: TELEMETRY_SCHEMA,
                    interval_ns: 0,
                    evicted: 0,
                    series: Vec::new(),
                    worst_clients: Vec::new(),
                    hot_stations: Vec::new(),
                },
                TopK::new(1),
            )
        });
        tel.worst_clients = worst.ranked();
        tel
    }

    /// Fill the hot-station tracker from exact per-station frame
    /// counts (the merged station table), keeping the top `k`.
    pub fn set_hot_stations(&mut self, k: usize, frames: impl IntoIterator<Item = (u32, u64)>) {
        let mut top = TopK::new(k.max(1));
        for (station, count) in frames {
            if count > 0 {
                top.add(u64::from(station), count);
            }
        }
        self.hot_stations = top.ranked();
    }

    /// One JSON object per sample row, in series order — the
    /// `--telemetry-out` artifact. Byte-identical across shard layouts.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for row in &self.series {
            s.push_str(&serde_json::to_string(row).expect("sample row serializes"));
            s.push('\n');
        }
        s
    }

    /// Prometheus-style text exposition of the final state: cumulative
    /// counters over the retained window, boundary gauges from the last
    /// row, and the outlier trackers as labeled series. HELP text and
    /// label values go through the exposition-format escaping rules
    /// ([`escape_help`], [`escape_label_value`]).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let total = |f: fn(&SamplePoint) -> u64| self.series.iter().map(f).sum::<u64>();
        let mut counter = |name: &str, help: &str, v: u64| {
            let _ = writeln!(s, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {v}");
        };
        counter(
            "fleet_engine_events_total",
            "Engine events dispatched over the retained window.",
            total(|r| r.events),
        );
        counter(
            "fleet_probes_sent_total",
            "Probes emitted over the retained window.",
            total(|r| r.probes_sent),
        );
        counter(
            "fleet_rtts_completed_total",
            "Round trips completed over the retained window.",
            total(|r| r.rtts_completed),
        );
        counter(
            "fleet_packets_lost_total",
            "Packets lost over the retained window.",
            total(|r| r.packets_lost),
        );
        counter(
            "fleet_released_total",
            "Modulated releases over the retained window.",
            total(|r| r.released),
        );
        counter(
            "fleet_station_frames_total",
            "Frames forwarded through base stations over the retained window.",
            total(|r| r.station_frames),
        );
        counter(
            "fleet_telemetry_evicted_rows_total",
            "Series rows evicted by the bounded ring.",
            self.evicted,
        );
        let last = self.series.last().copied().unwrap_or_default();
        let mut gauge = |name: &str, help: &str, v: u64| {
            let _ = writeln!(s, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(s, "# TYPE {name} gauge");
            let _ = writeln!(s, "{name} {v}");
        };
        gauge(
            "fleet_queue_depth",
            "Engine events pending at the last boundary.",
            last.queue_depth,
        );
        gauge(
            "fleet_packets_live",
            "Packets in flight at the last boundary.",
            last.packets_live,
        );
        gauge(
            "fleet_mod_held",
            "Packets held in modulation wheels at the last boundary.",
            last.mod_held,
        );
        gauge(
            "fleet_degraded_clients",
            "Clients marked degraded at the last boundary.",
            last.degraded_clients,
        );
        if !self.worst_clients.is_empty() {
            let _ = writeln!(
                s,
                "# HELP fleet_client_rtt_p95_us Worst per-client p95 RTT (microseconds)."
            );
            let _ = writeln!(s, "# TYPE fleet_client_rtt_p95_us gauge");
            for e in &self.worst_clients {
                let _ = writeln!(
                    s,
                    "fleet_client_rtt_p95_us{{client=\"{}\"}} {}",
                    escape_label_value(&e.key.to_string()),
                    e.weight
                );
            }
        }
        if !self.hot_stations.is_empty() {
            let _ = writeln!(
                s,
                "# HELP fleet_station_hot_frames Frames through the hottest stations."
            );
            let _ = writeln!(s, "# TYPE fleet_station_hot_frames gauge");
            for e in &self.hot_stations {
                let _ = writeln!(
                    s,
                    "fleet_station_hot_frames{{station=\"{}\"}} {}",
                    escape_label_value(&e.key.to_string()),
                    e.weight
                );
            }
        }
        s
    }

    /// Markdown sparkline/table section, shared between the fleet
    /// report renderer and `obs-report --format md`.
    pub fn render_markdown_section(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "### Telemetry ({} samples @ {:.1} s virtual{})\n",
            self.series.len(),
            self.interval_ns as f64 / 1e9,
            if self.evicted > 0 {
                format!(", {} evicted", self.evicted)
            } else {
                String::new()
            }
        );
        if self.series.is_empty() {
            let _ = writeln!(s, "*No samples recorded (run shorter than one interval).*");
            return s;
        }
        let _ = writeln!(s, "| series | spark | min | mean | max | last |");
        let _ = writeln!(s, "|---|---|---|---|---|---|");
        let mut row = |name: &str, values: Vec<f64>, unit: &str| {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let last = *values.last().expect("non-empty series");
            let _ = writeln!(
                s,
                "| {name} | `{}` | {} | {} | {} | {} |",
                sparkline(&values),
                fmt_val(min, unit),
                fmt_val(mean, unit),
                fmt_val(max, unit),
                fmt_val(last, unit)
            );
        };
        let col = |f: fn(&SamplePoint) -> f64| self.series.iter().map(f).collect::<Vec<_>>();
        row("events / interval", col(|r| r.events as f64), "");
        row("queue depth", col(|r| r.queue_depth as f64), "");
        row("packets live", col(|r| r.packets_live as f64), "");
        row("mod held", col(|r| r.mod_held as f64), "");
        row("rtts completed", col(|r| r.rtts_completed as f64), "");
        row("released", col(|r| r.released as f64), "");
        row(
            "mean \\|delay err\\|",
            col(SamplePoint::mean_abs_delay_error_ms),
            " ms",
        );
        row("station frames", col(|r| r.station_frames as f64), "");
        row("degraded clients", col(|r| r.degraded_clients as f64), "");
        if !self.worst_clients.is_empty() {
            let _ = writeln!(s, "\n#### Worst clients (p95 RTT)\n");
            let _ = writeln!(s, "| client | p95 RTT |");
            let _ = writeln!(s, "|---|---|");
            for e in &self.worst_clients {
                let _ = writeln!(s, "| {} | {:.2} ms |", e.key, e.weight as f64 / 1e3);
            }
        }
        if !self.hot_stations.is_empty() {
            let _ = writeln!(s, "\n#### Hottest stations\n");
            let _ = writeln!(s, "| station | frames |");
            let _ = writeln!(s, "|---|---|");
            for e in &self.hot_stations {
                let _ = writeln!(s, "| {} | {} |", e.key, e.weight);
            }
        }
        s
    }
}

/// Escape a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape Prometheus HELP text per the exposition format: backslash
/// and newline become `\\` and `\n` (quotes stay literal in HELP).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// True when `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`). The exposition tests hold every
/// exported series name to this.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Format a rendered value: integers bare, fractional values to two
/// places, with an optional unit suffix.
fn fmt_val(v: f64, unit: &str) -> String {
    if unit.is_empty() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}{unit}")
    }
}

/// Render values as a fixed-height Unicode sparkline, decimating by
/// bucket-mean when wider than the fixed 48-cell budget. A flat series
/// renders at the lowest level.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let decimated: Vec<f64> = if values.len() > SPARK_WIDTH {
        (0..SPARK_WIDTH)
            .map(|b| {
                let lo = b * values.len() / SPARK_WIDTH;
                let hi = ((b + 1) * values.len() / SPARK_WIDTH).max(lo + 1);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    } else {
        values.to_vec()
    };
    let min = decimated.iter().copied().fold(f64::INFINITY, f64::min);
    let max = decimated.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    decimated
        .iter()
        .map(|&v| {
            let level = if span <= 0.0 {
                0
            } else {
                (((v - min) / span) * (SPARKS.len() - 1) as f64).round() as usize
            };
            SPARKS[level.min(SPARKS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(events: u64, released: u64, err_ns: u64) -> SampleInputs {
        SampleInputs {
            events,
            released,
            abs_delay_error_ns: err_ns,
            queue_depth: 3,
            ..SampleInputs::default()
        }
    }

    #[test]
    fn ring_differences_counters_and_bounds_rows() {
        let cfg = TelemetryConfig::default()
            .with_interval_secs(1)
            .with_ring_capacity(2);
        let mut t = ShardTelemetry::new(cfg);
        t.sample(1_000_000_000, inputs(10, 4, 8_000_000));
        t.sample(2_000_000_000, inputs(25, 6, 12_000_000));
        t.sample(3_000_000_000, inputs(30, 6, 12_000_000));
        assert_eq!(t.evicted(), 1);
        let rows: Vec<_> = t.series().copied().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].t_ns, 2_000_000_000);
        assert_eq!(rows[0].events, 15);
        assert_eq!(rows[0].released, 2);
        assert_eq!(rows[0].abs_delay_error_ns, 4_000_000);
        assert!((rows[0].mean_abs_delay_error_ms() - 2.0).abs() < 1e-12);
        assert_eq!(rows[1].events, 5);
        assert_eq!(rows[1].released, 0);
        assert_eq!(rows[1].mean_abs_delay_error_ms(), 0.0);
    }

    #[test]
    fn merge_sums_rows_and_folds_outliers() {
        let cfg = TelemetryConfig::default();
        let mut a = ShardTelemetry::new(cfg);
        let mut b = ShardTelemetry::new(cfg);
        a.sample(1_000_000_000, inputs(10, 1, 1_000_000));
        b.sample(1_000_000_000, inputs(20, 3, 5_000_000));
        a.note_client_p95(0, 900);
        b.note_client_p95(5, 1_500);
        let merged = FleetTelemetry::merge([&a, &b]);
        assert_eq!(merged.series.len(), 1);
        assert_eq!(merged.series[0].events, 30);
        assert_eq!(merged.series[0].released, 4);
        assert_eq!(merged.series[0].queue_depth, 6);
        assert_eq!(merged.worst_clients[0].key, 5);
        assert_eq!(merged.worst_clients[0].weight, 1_500);
        // JSONL is one parseable object per row.
        let jsonl = merged.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let back: SamplePoint = serde_json::from_str(jsonl.trim()).unwrap();
        assert_eq!(back, merged.series[0]);
    }

    #[test]
    fn topk_offer_max_is_exact_and_order_independent() {
        let mut fwd = TopK::new(2);
        let mut rev = TopK::new(2);
        let items = [(1u64, 10u64), (2, 30), (3, 20), (4, 30)];
        for &(k, w) in &items {
            fwd.offer_max(k, w);
        }
        for &(k, w) in items.iter().rev() {
            rev.offer_max(k, w);
        }
        // Ties at weight 30: the smaller key (2) outranks key 4.
        let r = fwd.ranked();
        assert_eq!(r, rev.ranked());
        assert_eq!((r[0].key, r[0].weight), (2, 30));
        assert_eq!((r[1].key, r[1].weight), (4, 30));
    }

    #[test]
    fn topk_add_carries_spacesaving_error() {
        let mut t = TopK::new(2);
        t.add(1, 5);
        t.add(2, 3);
        t.add(3, 1); // evicts key 2 (min); inherits its weight as error
        let r = t.ranked();
        assert_eq!((r[0].key, r[0].weight, r[0].error), (1, 5, 0));
        assert_eq!((r[1].key, r[1].weight, r[1].error), (3, 4, 3));
        t.add(1, 1);
        assert_eq!(t.ranked()[0].weight, 6);
    }

    #[test]
    fn prometheus_and_markdown_render() {
        let cfg = TelemetryConfig::default();
        let mut a = ShardTelemetry::new(cfg);
        a.sample(1_000_000_000, inputs(100, 10, 20_000_000));
        a.sample(2_000_000_000, inputs(250, 30, 60_000_000));
        a.note_client_p95(7, 12_345);
        let mut tel = FleetTelemetry::merge([&a]);
        tel.set_hot_stations(4, [(0u32, 50u64), (1, 80), (2, 0)]);
        let prom = tel.to_prometheus();
        assert!(prom.contains("fleet_engine_events_total 250"));
        assert!(prom.contains("fleet_client_rtt_p95_us{client=\"7\"} 12345"));
        assert!(prom.contains("fleet_station_hot_frames{station=\"1\"} 80"));
        let md = tel.render_markdown_section();
        assert!(md.contains("### Telemetry (2 samples"));
        assert!(md.contains("| events / interval |"));
        assert!(md.contains("12.35 ms") || md.contains("12.34 ms"));
        // Round-trips as part of a serialized report payload.
        let json = serde_json::to_string(&tel).unwrap();
        let back: FleetTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tel);
    }

    #[test]
    fn sparkline_scales_and_decimates() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        let long: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long).chars().count(), SPARK_WIDTH);
    }
}
