//! Span timing keyed to virtual time.

use netsim::stats::Summary;
use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Measures durations between `begin`/`end` pairs in **virtual** time.
///
/// Tokens distinguish concurrently open spans (e.g. per-packet holds in
/// the modulation layer, keyed by packet sequence number). Because both
/// endpoints are [`SimTime`]s, the resulting distribution depends only
/// on the simulation — never on wall-clock scheduling — which is what
/// lets span metrics appear in the deterministic half of a run
/// manifest.
#[derive(Debug, Clone)]
pub struct SpanTimer {
    open: BTreeMap<u64, SimTime>,
    durations: Summary,
    peak_open: usize,
}

impl Default for SpanTimer {
    fn default() -> Self {
        SpanTimer::new()
    }
}

impl SpanTimer {
    /// A timer with no open spans.
    pub fn new() -> Self {
        SpanTimer {
            open: BTreeMap::new(),
            durations: Summary::keeping_samples(),
            peak_open: 0,
        }
    }

    /// Open a span identified by `token` at virtual time `at`.
    /// Re-opening an already open token restarts it.
    pub fn begin(&mut self, token: u64, at: SimTime) {
        self.open.insert(token, at);
        self.peak_open = self.peak_open.max(self.open.len());
    }

    /// Close span `token` at virtual time `at`, recording its duration
    /// in seconds. Returns the duration, or `None` for an unknown
    /// token (or a clock that went backwards).
    pub fn end(&mut self, token: u64, at: SimTime) -> Option<SimDuration> {
        let start = self.open.remove(&token)?;
        if at < start {
            return None;
        }
        let d = at.since(start);
        self.durations.add(d.as_secs_f64());
        Some(d)
    }

    /// Spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// High-water mark of concurrently open spans.
    pub fn peak_open(&self) -> usize {
        self.peak_open
    }

    /// Closed spans recorded.
    pub fn count(&self) -> u64 {
        self.durations.count()
    }

    /// Distribution of closed-span durations (seconds), with exact
    /// percentiles.
    pub fn durations(&self) -> &Summary {
        &self.durations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_measure_virtual_durations() {
        let mut t = SpanTimer::new();
        t.begin(1, SimTime::from_millis(100));
        t.begin(2, SimTime::from_millis(150));
        assert_eq!(t.open_count(), 2);
        assert_eq!(
            t.end(1, SimTime::from_millis(160)),
            Some(SimDuration::from_millis(60))
        );
        assert_eq!(
            t.end(2, SimTime::from_millis(250)),
            Some(SimDuration::from_millis(100))
        );
        assert_eq!(t.count(), 2);
        assert_eq!(t.peak_open(), 2);
        assert!((t.durations().mean() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn unknown_token_and_backwards_clock_are_ignored() {
        let mut t = SpanTimer::new();
        assert_eq!(t.end(7, SimTime::from_secs(1)), None);
        t.begin(7, SimTime::from_secs(2));
        assert_eq!(t.end(7, SimTime::from_secs(1)), None);
        assert_eq!(t.count(), 0);
        // The failed close still consumed the token.
        assert_eq!(t.open_count(), 0);
    }
}
