//! The fidelity SLO engine: declarative alert rules evaluated in
//! virtual time over the telemetry plane.
//!
//! A rule names a metric — a [`SamplePoint`] field (`sample.*`), a
//! [`FleetReport`] aggregate (`fleet.*`), or a fleet counter
//! (`fleet.metrics.*`) — and one predicate: a plain threshold
//! (`above` / `below`), a windowed burn rate (`window` + `frac`: the
//! fraction of the trailing window's boundaries violating the
//! threshold), or a delta-vs-baseline bound (`baseline_max_abs` /
//! `baseline_max_rel` against a second run's report). Rules carry a
//! severity and an optional chaos-aware suppression clause: fault
//! kinds plus a window length, keyed off `faultkit` event timestamps,
//! so alerts raised in the shadow of an injected fault are *attributed*
//! to it instead of firing as false positives.
//!
//! **Determinism.** Evaluation reads only deterministic inputs — the
//! merged integer telemetry series, the deterministic fields of the
//! fleet report, and virtual-time-stamped fault events — and never
//! wall clock, so the same run yields a byte-identical
//! [`AlertReport`] (JSONL and markdown) at any shard or worker count.
//!
//! Rules load from JSON ([`RuleSet::from_json`]) or a small TOML
//! subset ([`RuleSet::from_toml`]: `[[rule]]` tables with string /
//! number / string-array values), and [`RuleSet::builtin`] ships a
//! starter set used by CI and the README walkthrough.

use crate::fleet::FleetReport;
use crate::telemetry::SamplePoint;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Alert-report schema version, bumped on incompatible layout changes.
pub const ALERTS_SCHEMA: u32 = 1;

/// Alert severity, ordered least to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: recorded, never gated on by default.
    Info,
    /// Degradation worth surfacing; the default gate floor.
    Warn,
    /// Fidelity contract broken.
    Critical,
}

impl Severity {
    /// Parse a severity name (`info`, `warn`, `critical`).
    pub fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "info" => Ok(Severity::Info),
            "warn" | "" => Ok(Severity::Warn),
            "critical" => Ok(Severity::Critical),
            other => Err(format!(
                "unknown severity '{other}' (try: info, warn, critical)"
            )),
        }
    }

    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One declared rule, as parsed from TOML or JSON — a flat bag of
/// optional clauses validated into a predicate by [`RuleSet::compile`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSpec {
    /// Rule name (unique within a set; appears in every alert).
    pub name: String,
    /// Metric selector: `sample.<field>`, `fleet.<field>`, or
    /// `fleet.metrics.<counter>`.
    pub metric: String,
    /// Severity name (`info` / `warn` / `critical`; default `warn`).
    #[serde(default)]
    pub severity: String,
    /// Threshold: violate when the metric is strictly above this.
    #[serde(default)]
    pub above: Option<f64>,
    /// Threshold: violate when the metric is strictly below this.
    #[serde(default)]
    pub below: Option<f64>,
    /// Burn-rate window length in sample boundaries (with `frac`).
    #[serde(default)]
    pub window: Option<u64>,
    /// Burn-rate fraction in `[0, 1]`: the boundary violates when at
    /// least this fraction of the trailing `window` boundaries breach
    /// the threshold.
    #[serde(default)]
    pub frac: Option<f64>,
    /// Delta-vs-baseline: absolute tolerance around the baseline value.
    #[serde(default)]
    pub baseline_max_abs: Option<f64>,
    /// Delta-vs-baseline: relative tolerance (fraction of |baseline|).
    #[serde(default)]
    pub baseline_max_rel: Option<f64>,
    /// Fault kinds whose injection opens a suppression window.
    #[serde(default)]
    pub suppress: Vec<String>,
    /// Suppression window length in virtual seconds after each
    /// matching fault event (default 5 s when `suppress` is set).
    #[serde(default)]
    pub suppress_window_secs: Option<f64>,
}

/// A parsed set of alert rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// The declared rules, in declaration order.
    pub rules: Vec<RuleSpec>,
}

/// Default suppression window when a rule names fault kinds without a
/// `suppress_window_secs` clause.
const DEFAULT_SUPPRESS_WINDOW_NS: u64 = 5_000_000_000;

impl RuleSet {
    /// Parse a rule set from JSON (`{"rules": [{...}, ...]}`).
    pub fn from_json(s: &str) -> Result<RuleSet, String> {
        serde_json::from_str(s).map_err(|e| format!("rule set: {e}"))
    }

    /// Serialize to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("rule set serializes")
    }

    /// Parse the TOML subset: `[[rule]]` tables whose entries are
    /// `key = value` lines with string, number, or string-array
    /// values; `#` comments and blank lines are ignored.
    pub fn from_toml(s: &str) -> Result<RuleSet, String> {
        let mut rules: Vec<RuleSpec> = Vec::new();
        for (idx, raw) in s.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            let at = |msg: String| format!("rules line {}: {msg}", idx + 1);
            if line.is_empty() {
                continue;
            }
            if line == "[[rule]]" {
                rules.push(RuleSpec::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(at(format!(
                    "unsupported table '{line}' (only [[rule]] tables)"
                )));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected key = value, got '{line}'")))?;
            let (key, value) = (key.trim(), value.trim());
            let rule = rules
                .last_mut()
                .ok_or_else(|| at(format!("'{key}' appears before any [[rule]] table")))?;
            apply_toml_entry(rule, key, value).map_err(at)?;
        }
        Ok(RuleSet { rules })
    }

    /// Compile and validate into evaluable rules.
    pub fn compile(&self) -> Result<Vec<CompiledRule>, String> {
        self.rules.iter().map(CompiledRule::from_spec).collect()
    }

    /// The built-in starter rules (`--rules builtin`): fidelity-contract
    /// thresholds over the fleet aggregates plus windowed series checks,
    /// each suppressed under the faults that legitimately cause it.
    pub fn builtin() -> RuleSet {
        let toml = r#"
# Fleet aggregate contract: the same bars the fidelity gate holds.
[[rule]]
name = "fleet-deadline-miss-rate"
metric = "fleet.deadline_miss_rate"
severity = "critical"
above = 0.05
suppress = ["stall_feed", "clock_jump", "oom_ring"]

[[rule]]
name = "fleet-worst-p95"
metric = "fleet.worst_abs_delay_error_p95_ms"
severity = "critical"
above = 20.0
suppress = ["stall_feed", "clock_jump"]

[[rule]]
name = "fleet-failed-clients"
metric = "fleet.failed_clients"
severity = "critical"
above = 0
suppress = ["kill_worker", "stall_feed", "clock_jump", "oom_ring"]

# Series health: sustained degradation, not single-boundary blips.
[[rule]]
name = "degraded-clients"
metric = "sample.degraded_clients"
severity = "warn"
above = 0
window = 2
frac = 1.0
suppress = ["kill_worker", "stall_feed", "oom_ring"]
suppress_window_secs = 10.0

[[rule]]
name = "delay-error-burn"
metric = "sample.mean_abs_delay_error_ms"
severity = "warn"
above = 10.0
window = 3
frac = 0.6
suppress = ["stall_feed", "clock_jump"]
"#;
        RuleSet::from_toml(toml).expect("builtin rules parse")
    }
}

/// Drop a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Apply one `key = value` TOML entry to a rule under construction.
fn apply_toml_entry(rule: &mut RuleSpec, key: &str, value: &str) -> Result<(), String> {
    let as_str = |v: &str| -> Result<String, String> {
        let v = v.trim();
        if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
            Ok(v[1..v.len() - 1].to_string())
        } else {
            Err(format!("expected a quoted string for '{key}', got '{v}'"))
        }
    };
    let as_num = |v: &str| -> Result<f64, String> {
        v.parse::<f64>()
            .map_err(|_| format!("expected a number for '{key}', got '{v}'"))
    };
    match key {
        "name" => rule.name = as_str(value)?,
        "metric" => rule.metric = as_str(value)?,
        "severity" => rule.severity = as_str(value)?,
        "above" => rule.above = Some(as_num(value)?),
        "below" => rule.below = Some(as_num(value)?),
        "window" => {
            let n = as_num(value)?;
            if n < 1.0 || n.fract() != 0.0 {
                return Err(format!(
                    "'window' must be a positive integer, got '{value}'"
                ));
            }
            rule.window = Some(n as u64);
        }
        "frac" => rule.frac = Some(as_num(value)?),
        "baseline_max_abs" => rule.baseline_max_abs = Some(as_num(value)?),
        "baseline_max_rel" => rule.baseline_max_rel = Some(as_num(value)?),
        "suppress_window_secs" => rule.suppress_window_secs = Some(as_num(value)?),
        "suppress" => {
            let v = value.trim();
            if !(v.starts_with('[') && v.ends_with(']')) {
                return Err(format!("expected an array for 'suppress', got '{v}'"));
            }
            let inner = &v[1..v.len() - 1];
            let mut kinds = Vec::new();
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                kinds.push(as_str(part)?);
            }
            rule.suppress = kinds;
        }
        other => return Err(format!("unknown rule key '{other}'")),
    }
    Ok(())
}

/// The metric a compiled rule reads.
#[derive(Debug, Clone, PartialEq)]
enum MetricSel {
    /// A per-boundary [`SamplePoint`] field, by stable field name.
    Sample(&'static str),
    /// A [`FleetReport`] aggregate field, by stable field name.
    Fleet(&'static str),
    /// A fleet counter from the report's metrics registry.
    FleetCounter(String),
}

/// A compiled predicate over the selected metric.
#[derive(Debug, Clone, PartialEq)]
enum Predicate {
    /// Violate when the value is strictly above (`true`) / below
    /// (`false`) the threshold.
    Threshold {
        /// Strictly-above when true, strictly-below when false.
        above: bool,
        /// The threshold value.
        limit: f64,
    },
    /// Violate at a boundary when at least `frac` of the trailing
    /// `window` boundaries breach the threshold.
    BurnRate {
        /// Strictly-above when true, strictly-below when false.
        above: bool,
        /// The threshold value.
        limit: f64,
        /// Trailing window length in boundaries.
        window: u64,
        /// Violating fraction that trips the rule.
        frac: f64,
    },
    /// Violate when the value drifts outside
    /// `baseline ± (max_abs + max_rel × |baseline|)`.
    DeltaVsBaseline {
        /// Absolute tolerance.
        max_abs: f64,
        /// Relative tolerance as a fraction of |baseline|.
        max_rel: f64,
    },
}

impl Predicate {
    /// Human/markdown rendering of the violated condition.
    fn describe(&self) -> String {
        match self {
            Predicate::Threshold { above, limit } => {
                format!("{} {limit}", if *above { ">" } else { "<" })
            }
            Predicate::BurnRate {
                above,
                limit,
                window,
                frac,
            } => format!(
                ">= {frac} of last {window} samples {} {limit}",
                if *above { ">" } else { "<" }
            ),
            Predicate::DeltaVsBaseline { max_abs, max_rel } => {
                format!("within baseline ± ({max_abs} + {max_rel}·|baseline|)")
            }
        }
    }
}

/// One rule compiled and validated, ready to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRule {
    name: String,
    metric_name: String,
    metric: MetricSel,
    severity: Severity,
    predicate: Predicate,
    suppress: Vec<String>,
    suppress_window_ns: u64,
}

/// A named accessor over one [`SamplePoint`] field.
type SampleAccessor = (&'static str, fn(&SamplePoint) -> f64);

/// Look up a `sample.*` selector by field name.
fn sample_selector(field: &str) -> Option<SampleAccessor> {
    let sel: SampleAccessor = match field {
        "events" => ("events", |r| r.events as f64),
        "queue_depth" => ("queue_depth", |r| r.queue_depth as f64),
        "packets_live" => ("packets_live", |r| r.packets_live as f64),
        "mod_held" => ("mod_held", |r| r.mod_held as f64),
        "probes_sent" => ("probes_sent", |r| r.probes_sent as f64),
        "rtts_completed" => ("rtts_completed", |r| r.rtts_completed as f64),
        "packets_lost" => ("packets_lost", |r| r.packets_lost as f64),
        "released" => ("released", |r| r.released as f64),
        "abs_delay_error_ns" => ("abs_delay_error_ns", |r| r.abs_delay_error_ns as f64),
        "station_frames" => ("station_frames", |r| r.station_frames as f64),
        "degraded_clients" => ("degraded_clients", |r| r.degraded_clients as f64),
        "mean_abs_delay_error_ms" => (
            "mean_abs_delay_error_ms",
            SamplePoint::mean_abs_delay_error_ms,
        ),
        _ => return None,
    };
    Some(sel)
}

/// Read a `fleet.*` aggregate off a report by field name.
fn fleet_value(report: &FleetReport, field: &str) -> Option<f64> {
    Some(match field {
        "clients" => f64::from(report.clients),
        "modulated_packets" => report.modulated_packets as f64,
        "released_packets" => report.released_packets as f64,
        "dropped_packets" => report.dropped_packets as f64,
        "deadline_misses" => report.deadline_misses as f64,
        "deadline_miss_rate" => report.deadline_miss_rate,
        "mean_abs_delay_error_p95_ms" => report.mean_abs_delay_error_p95_ms,
        "worst_abs_delay_error_p95_ms" => report.worst_abs_delay_error_p95_ms,
        "failed_clients" => f64::from(report.failed_clients),
        "degraded_clients" => f64::from(report.degraded_clients),
        _ => return None,
    })
}

/// Stable names accepted after `fleet.` (error-message helper).
const FLEET_FIELDS: &str = "clients, modulated_packets, released_packets, dropped_packets, \
     deadline_misses, deadline_miss_rate, mean_abs_delay_error_p95_ms, \
     worst_abs_delay_error_p95_ms, failed_clients, degraded_clients";

impl CompiledRule {
    fn from_spec(spec: &RuleSpec) -> Result<CompiledRule, String> {
        let ctx = |msg: String| {
            if spec.name.is_empty() {
                format!("rule (unnamed): {msg}")
            } else {
                format!("rule '{}': {msg}", spec.name)
            }
        };
        if spec.name.is_empty() {
            return Err(ctx("missing 'name'".into()));
        }
        let metric = if let Some(field) = spec.metric.strip_prefix("sample.") {
            let (name, _) = sample_selector(field)
                .ok_or_else(|| ctx(format!("unknown sample field '{field}'")))?;
            MetricSel::Sample(name)
        } else if let Some(counter) = spec.metric.strip_prefix("fleet.metrics.") {
            if counter.is_empty() {
                return Err(ctx("empty fleet counter name".into()));
            }
            MetricSel::FleetCounter(counter.to_string())
        } else if let Some(field) = spec.metric.strip_prefix("fleet.") {
            let probe = FleetReport::from_manifests(
                "",
                &[],
                &crate::fidelity::FidelityThresholds::default(),
            );
            if fleet_value(&probe, field).is_none() {
                return Err(ctx(format!(
                    "unknown fleet field '{field}' (try: {FLEET_FIELDS})"
                )));
            }
            MetricSel::Fleet(match fleet_field_name(field) {
                Some(n) => n,
                None => return Err(ctx(format!("unknown fleet field '{field}'"))),
            })
        } else {
            return Err(ctx(format!(
                "metric '{}' must start with sample., fleet., or fleet.metrics.",
                spec.metric
            )));
        };
        let severity = Severity::parse(&spec.severity).map_err(&ctx)?;

        let threshold = match (spec.above, spec.below) {
            (Some(_), Some(_)) => return Err(ctx("'above' and 'below' are exclusive".into())),
            (Some(limit), None) => Some((true, limit)),
            (None, Some(limit)) => Some((false, limit)),
            (None, None) => None,
        };
        let baseline = spec.baseline_max_abs.is_some() || spec.baseline_max_rel.is_some();
        let predicate = match (threshold, baseline) {
            (Some(_), true) => {
                return Err(ctx(
                    "threshold and baseline clauses are exclusive in one rule".into(),
                ))
            }
            (None, false) => {
                return Err(ctx(
                    "rule needs 'above', 'below', or a baseline_max_* clause".into(),
                ))
            }
            (Some((above, limit)), false) => match (spec.window, spec.frac) {
                (None, None) => Predicate::Threshold { above, limit },
                (Some(window), frac) => {
                    if window == 0 {
                        return Err(ctx("'window' must be >= 1".into()));
                    }
                    let frac = frac.unwrap_or(1.0);
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(ctx("'frac' must be in [0, 1]".into()));
                    }
                    if !matches!(metric, MetricSel::Sample(_)) {
                        return Err(ctx(
                            "burn-rate windows only apply to sample.* metrics".into()
                        ));
                    }
                    Predicate::BurnRate {
                        above,
                        limit,
                        window,
                        frac,
                    }
                }
                (None, Some(_)) => return Err(ctx("'frac' requires 'window'".into())),
            },
            (None, true) => {
                if spec.window.is_some() || spec.frac.is_some() {
                    return Err(ctx("baseline rules take no 'window'/'frac'".into()));
                }
                Predicate::DeltaVsBaseline {
                    max_abs: spec.baseline_max_abs.unwrap_or(0.0),
                    max_rel: spec.baseline_max_rel.unwrap_or(0.0),
                }
            }
        };
        let suppress_window_ns = match spec.suppress_window_secs {
            None => DEFAULT_SUPPRESS_WINDOW_NS,
            Some(s) if s >= 0.0 => (s * 1e9) as u64,
            Some(_) => return Err(ctx("'suppress_window_secs' must be >= 0".into())),
        };
        Ok(CompiledRule {
            name: spec.name.clone(),
            metric_name: spec.metric.clone(),
            metric,
            severity,
            predicate,
            suppress: spec.suppress.clone(),
            suppress_window_ns,
        })
    }
}

/// Canonical `fleet.*` field name (static str for [`MetricSel`]).
fn fleet_field_name(field: &str) -> Option<&'static str> {
    Some(match field {
        "clients" => "clients",
        "modulated_packets" => "modulated_packets",
        "released_packets" => "released_packets",
        "dropped_packets" => "dropped_packets",
        "deadline_misses" => "deadline_misses",
        "deadline_miss_rate" => "deadline_miss_rate",
        "mean_abs_delay_error_p95_ms" => "mean_abs_delay_error_p95_ms",
        "worst_abs_delay_error_p95_ms" => "worst_abs_delay_error_p95_ms",
        "failed_clients" => "failed_clients",
        "degraded_clients" => "degraded_clients",
        _ => return None,
    })
}

/// A fault event as the alert engine consumes it (mirrors
/// `faultkit::FaultEvent` without a crate dependency: `obs` sits below
/// `faultkit` in the workspace graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultStamp {
    /// Virtual time of the injection (ns from run start).
    pub t_virtual_ns: u64,
    /// Fault kind (stable name, e.g. `kill_worker`).
    pub fault: String,
    /// Human-readable detail.
    #[serde(default)]
    pub info: String,
}

/// Parse fault stamps from a `--fault-out` JSONL log.
pub fn parse_fault_stamps(text: &str) -> Result<Vec<FaultStamp>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad fault line: {e}")))
        .collect()
}

/// Everything one evaluation reads. All references: evaluation never
/// mutates its inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlertInputs<'a> {
    /// Merged telemetry series, oldest first (empty when the run
    /// sampled no telemetry).
    pub series: &'a [SamplePoint],
    /// The run's aggregate fleet report, for `fleet.*` rules.
    pub report: Option<&'a FleetReport>,
    /// A baseline run's report (its embedded telemetry serves
    /// `sample.*` baseline rules) for delta-vs-baseline predicates.
    pub baseline: Option<&'a FleetReport>,
    /// Injected-fault stamps driving suppression windows.
    pub faults: &'a [FaultStamp],
}

/// One fired alert. A `sample.*` alert covers a maximal run of
/// consecutive violating boundaries sharing a suppression status; a
/// `fleet.*` alert covers the whole run (`t_first_ns == t_last_ns == 0`,
/// `samples == 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The firing rule's name.
    pub rule: String,
    /// Severity name (`info` / `warn` / `critical`).
    pub severity: String,
    /// The metric selector that violated.
    pub metric: String,
    /// First violating boundary (virtual ns; 0 for aggregate rules).
    pub t_first_ns: u64,
    /// Last violating boundary (virtual ns; 0 for aggregate rules).
    pub t_last_ns: u64,
    /// Violating boundaries covered (1 for aggregate rules).
    pub samples: u64,
    /// Worst observed value over the covered boundaries.
    pub value: f64,
    /// The violated condition, rendered.
    pub threshold: String,
    /// True when every covered boundary fell inside a suppression
    /// window opened by a matching injected fault.
    pub suppressed: bool,
    /// The suppressing fault (`kind@t`), empty when unsuppressed.
    #[serde(default)]
    pub attributed_to: String,
}

/// The deterministic evaluation artifact: every alert plus tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertReport {
    /// Schema version ([`ALERTS_SCHEMA`]).
    pub schema: u32,
    /// Rules evaluated.
    pub rules: u64,
    /// Telemetry boundaries scanned.
    pub boundaries: u64,
    /// Fault stamps considered for suppression.
    pub fault_events: u64,
    /// Every fired alert, in rule order then virtual-time order.
    pub alerts: Vec<Alert>,
}

impl AlertReport {
    /// Alerts that fired inside suppression windows.
    pub fn suppressed(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| a.suppressed)
    }

    /// Alerts that fired with no covering suppression window.
    pub fn active(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| !a.suppressed)
    }

    /// Count active (unsuppressed) alerts at or above `floor`.
    pub fn active_at_or_above(&self, floor: Severity) -> usize {
        self.active()
            .filter(|a| Severity::parse(&a.severity).map(|s| s >= floor) == Ok(true))
            .count()
    }

    /// The gate: violation strings for every active alert at or above
    /// `floor` (empty = pass). Suppressed alerts never gate — they are
    /// attributed to their injected fault instead.
    pub fn check(&self, floor: Severity) -> Vec<String> {
        self.active()
            .filter(|a| Severity::parse(&a.severity).map(|s| s >= floor) == Ok(true))
            .map(|a| {
                format!(
                    "[{}] {} {} {} (worst {} over {} boundaries at t={:.1}s..{:.1}s)",
                    a.severity,
                    a.rule,
                    a.metric,
                    a.threshold,
                    a.value,
                    a.samples,
                    a.t_first_ns as f64 / 1e9,
                    a.t_last_ns as f64 / 1e9,
                )
            })
            .collect()
    }

    /// One JSON object per alert, in report order — the `--out`
    /// artifact. Byte-identical across shard layouts and reruns.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for a in &self.alerts {
            s.push_str(&serde_json::to_string(a).expect("alert serializes"));
            s.push('\n');
        }
        s
    }

    /// Parse alerts back from a JSONL export (tallies recomputed from
    /// the lines; schema/boundary counts are not round-tripped).
    pub fn alerts_from_jsonl(text: &str) -> Result<Vec<Alert>, String> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).map_err(|e| format!("bad alert line: {e}")))
            .collect()
    }

    /// Markdown report: summary counts plus one table row per alert.
    pub fn render_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## Alerts\n");
        let active = self.active().count();
        let suppressed = self.suppressed().count();
        let _ = writeln!(
            s,
            "*{} rules over {} boundaries, {} fault events: {} active alert(s), {} suppressed.*\n",
            self.rules, self.boundaries, self.fault_events, active, suppressed
        );
        if self.alerts.is_empty() {
            let _ = writeln!(s, "No alerts fired.");
            return s;
        }
        let _ = writeln!(
            s,
            "| severity | rule | metric | violated | worst | window (virtual) | suppressed by |"
        );
        let _ = writeln!(s, "|---|---|---|---|---|---|---|");
        for a in &self.alerts {
            let window = if a.metric.starts_with("fleet.") {
                "whole run".to_string()
            } else {
                format!(
                    "{:.1}s..{:.1}s ({} samples)",
                    a.t_first_ns as f64 / 1e9,
                    a.t_last_ns as f64 / 1e9,
                    a.samples
                )
            };
            let _ = writeln!(
                s,
                "| {} | {} | `{}` | {} | {} | {} | {} |",
                a.severity,
                a.rule,
                a.metric,
                a.threshold,
                a.value,
                window,
                if a.suppressed {
                    a.attributed_to.as_str()
                } else {
                    "—"
                }
            );
        }
        s
    }
}

/// The suppressing fault covering virtual time `t` for `rule`, if any:
/// the latest matching-kind fault with `t` inside
/// `[fault.t, fault.t + window]`.
fn covering_fault<'a>(
    rule: &CompiledRule,
    faults: &'a [FaultStamp],
    t: u64,
) -> Option<&'a FaultStamp> {
    faults
        .iter()
        .filter(|f| {
            rule.suppress.iter().any(|k| k == &f.fault)
                && f.t_virtual_ns <= t
                && t - f.t_virtual_ns <= rule.suppress_window_ns
        })
        .max_by_key(|f| f.t_virtual_ns)
}

/// Render a fault attribution (`kind@12.0s`).
fn attribution(f: &FaultStamp) -> String {
    format!("{}@{:.1}s", f.fault, f.t_virtual_ns as f64 / 1e9)
}

/// Evaluate a rule set over a run. Pure over its inputs: the same
/// inputs always produce the same report, byte for byte.
pub fn evaluate(rules: &RuleSet, inputs: &AlertInputs) -> Result<AlertReport, String> {
    let compiled = rules.compile()?;
    let mut report = AlertReport {
        schema: ALERTS_SCHEMA,
        rules: compiled.len() as u64,
        boundaries: inputs.series.len() as u64,
        fault_events: inputs.faults.len() as u64,
        alerts: Vec::new(),
    };
    for rule in &compiled {
        match &rule.metric {
            MetricSel::Sample(field) => evaluate_series(rule, field, inputs, &mut report.alerts)?,
            MetricSel::Fleet(field) => {
                let Some(rep) = inputs.report else {
                    return Err(format!(
                        "rule '{}' reads {} but no fleet report was provided",
                        rule.name, rule.metric_name
                    ));
                };
                let value = fleet_value(rep, field).expect("validated at compile");
                let violated = match &rule.predicate {
                    Predicate::Threshold { above, limit } => {
                        threshold_violated(value, *above, *limit)
                    }
                    Predicate::DeltaVsBaseline { max_abs, max_rel } => {
                        let Some(base) = inputs.baseline else {
                            return Err(format!(
                                "rule '{}' needs a baseline report for {}",
                                rule.name, rule.metric_name
                            ));
                        };
                        let b = fleet_value(base, field).expect("validated at compile");
                        (value - b).abs() > max_abs + max_rel * b.abs()
                    }
                    Predicate::BurnRate { .. } => unreachable!("rejected at compile"),
                };
                if violated {
                    push_aggregate_alert(rule, value, inputs, &mut report.alerts);
                }
            }
            MetricSel::FleetCounter(name) => {
                let Some(rep) = inputs.report else {
                    return Err(format!(
                        "rule '{}' reads {} but no fleet report was provided",
                        rule.name, rule.metric_name
                    ));
                };
                let value = rep.metrics.counter(name).ok_or_else(|| {
                    format!("rule '{}': fleet counter '{name}' not in report", rule.name)
                })? as f64;
                let violated = match &rule.predicate {
                    Predicate::Threshold { above, limit } => {
                        threshold_violated(value, *above, *limit)
                    }
                    Predicate::DeltaVsBaseline { max_abs, max_rel } => {
                        let Some(base) = inputs.baseline else {
                            return Err(format!(
                                "rule '{}' needs a baseline report for {}",
                                rule.name, rule.metric_name
                            ));
                        };
                        let b = base.metrics.counter(name).ok_or_else(|| {
                            format!(
                                "rule '{}': fleet counter '{name}' not in baseline",
                                rule.name
                            )
                        })? as f64;
                        (value - b).abs() > max_abs + max_rel * b.abs()
                    }
                    Predicate::BurnRate { .. } => unreachable!("rejected at compile"),
                };
                if violated {
                    push_aggregate_alert(rule, value, inputs, &mut report.alerts);
                }
            }
        }
    }
    Ok(report)
}

fn threshold_violated(value: f64, above: bool, limit: f64) -> bool {
    if above {
        value > limit
    } else {
        value < limit
    }
}

/// Aggregate (`fleet.*`) alert: covers the whole run, suppressed when
/// any matching-kind fault fired at all (aggregates integrate the full
/// run, so every matching injection taints them).
fn push_aggregate_alert(
    rule: &CompiledRule,
    value: f64,
    inputs: &AlertInputs,
    alerts: &mut Vec<Alert>,
) {
    let suppressor = inputs
        .faults
        .iter()
        .filter(|f| rule.suppress.iter().any(|k| k == &f.fault))
        .max_by_key(|f| f.t_virtual_ns);
    alerts.push(Alert {
        rule: rule.name.clone(),
        severity: rule.severity.name().to_string(),
        metric: rule.metric_name.clone(),
        t_first_ns: 0,
        t_last_ns: 0,
        samples: 1,
        value,
        threshold: rule.predicate.describe(),
        suppressed: suppressor.is_some(),
        attributed_to: suppressor.map(attribution).unwrap_or_default(),
    });
}

/// Series (`sample.*`) evaluation: per-boundary violation flags, then
/// maximal runs of consecutive violating boundaries sharing a
/// suppression status collapse into one alert each.
fn evaluate_series(
    rule: &CompiledRule,
    field: &str,
    inputs: &AlertInputs,
    alerts: &mut Vec<Alert>,
) -> Result<(), String> {
    let (_, sel) = sample_selector(field).expect("validated at compile");
    let series = inputs.series;
    // Per-boundary (violates, worst value observed for the alert row).
    let mut flags: Vec<Option<f64>> = Vec::with_capacity(series.len());
    match &rule.predicate {
        Predicate::Threshold { above, limit } => {
            for row in series {
                let v = sel(row);
                flags.push(threshold_violated(v, *above, *limit).then_some(v));
            }
        }
        Predicate::BurnRate {
            above,
            limit,
            window,
            frac,
        } => {
            let w = *window as usize;
            for i in 0..series.len() {
                let lo = (i + 1).saturating_sub(w);
                let win = &series[lo..=i];
                let bad = win
                    .iter()
                    .filter(|r| threshold_violated(sel(r), *above, *limit))
                    .count();
                // Full windows only: the first w-1 boundaries cannot burn.
                let burns = win.len() == w && bad as f64 >= *frac * w as f64;
                flags.push(burns.then(|| sel(&series[i])));
            }
        }
        Predicate::DeltaVsBaseline { max_abs, max_rel } => {
            let base_series = inputs
                .baseline
                .and_then(|b| b.telemetry.as_ref())
                .map(|t| t.series.as_slice())
                .ok_or_else(|| {
                    format!(
                        "rule '{}' needs a baseline report with telemetry for {}",
                        rule.name, rule.metric_name
                    )
                })?;
            for row in series {
                // Align by boundary time, not index: a perturbed run may
                // cover a different span.
                let b = base_series.iter().find(|r| r.t_ns == row.t_ns);
                flags.push(match b {
                    None => None,
                    Some(b) => {
                        let (v, bv) = (sel(row), sel(b));
                        ((v - bv).abs() > max_abs + max_rel * bv.abs()).then_some(v)
                    }
                });
            }
        }
    }
    // Collapse runs. A run splits when suppression status changes so a
    // fault-shadowed prefix suppresses while the tail still alarms.
    let mut i = 0;
    while i < series.len() {
        let Some(v0) = flags[i] else {
            i += 1;
            continue;
        };
        let first_fault = covering_fault(rule, inputs.faults, series[i].t_ns);
        let status = first_fault.is_some();
        let (mut last, mut worst, mut count) = (i, v0, 1u64);
        let mut j = i + 1;
        while j < series.len() {
            let Some(v) = flags[j] else { break };
            if covering_fault(rule, inputs.faults, series[j].t_ns).is_some() != status {
                break;
            }
            worst = if worst >= v { worst } else { v };
            last = j;
            count += 1;
            j += 1;
        }
        alerts.push(Alert {
            rule: rule.name.clone(),
            severity: rule.severity.name().to_string(),
            metric: rule.metric_name.clone(),
            t_first_ns: series[i].t_ns,
            t_last_ns: series[last].t_ns,
            samples: count,
            value: worst,
            threshold: rule.predicate.describe(),
            suppressed: status,
            attributed_to: first_fault.map(attribution).unwrap_or_default(),
        });
        i = j;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{FleetTelemetry, TELEMETRY_SCHEMA};

    fn row(t_secs: u64, queue_depth: u64, released: u64, err_ns: u64) -> SamplePoint {
        SamplePoint {
            t_ns: t_secs * 1_000_000_000,
            queue_depth,
            released,
            abs_delay_error_ns: err_ns,
            ..SamplePoint::default()
        }
    }

    fn one_rule(toml: &str) -> RuleSet {
        RuleSet::from_toml(toml).unwrap()
    }

    #[test]
    fn toml_parses_rules_and_rejects_garbage() {
        let rs = one_rule(
            r#"
# a comment
[[rule]]
name = "deep-queue"            # trailing comment
metric = "sample.queue_depth"
severity = "critical"
above = 100
window = 2
frac = 0.5
suppress = ["kill_worker", "stall_feed"]
suppress_window_secs = 7.5
"#,
        );
        assert_eq!(rs.rules.len(), 1);
        let r = &rs.rules[0];
        assert_eq!(r.name, "deep-queue");
        assert_eq!(r.above, Some(100.0));
        assert_eq!(r.window, Some(2));
        assert_eq!(r.suppress, vec!["kill_worker", "stall_feed"]);
        assert_eq!(r.suppress_window_secs, Some(7.5));

        assert!(
            RuleSet::from_toml("name = \"x\"").is_err(),
            "entry before table"
        );
        assert!(
            RuleSet::from_toml("[[rule]]\nbogus = 1").is_err(),
            "unknown key"
        );
        assert!(RuleSet::from_toml("[rule]").is_err(), "plain table");
        assert!(RuleSet::from_toml("[[rule]]\nname = unquoted").is_err());
    }

    #[test]
    fn json_round_trips_and_compiles_like_toml() {
        let rs = one_rule("[[rule]]\nname = \"a\"\nmetric = \"sample.released\"\nbelow = 1\n");
        let back = RuleSet::from_json(&rs.to_json_pretty()).unwrap();
        assert_eq!(back, rs);
        assert_eq!(back.compile().unwrap(), rs.compile().unwrap());
    }

    #[test]
    fn compile_rejects_bad_specs() {
        let bad = [
            "[[rule]]\nname = \"x\"\nmetric = \"sample.nope\"\nabove = 1\n",
            "[[rule]]\nname = \"x\"\nmetric = \"fleet.nope\"\nabove = 1\n",
            "[[rule]]\nname = \"x\"\nmetric = \"queue_depth\"\nabove = 1\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\nabove = 1\nbelow = 2\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\nabove = 1\nbaseline_max_abs = 2\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\nabove = 1\nfrac = 0.5\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\nabove = 1\nwindow = 2\nfrac = 1.5\n",
            "[[rule]]\nname = \"x\"\nmetric = \"fleet.deadline_miss_rate\"\nabove = 1\nwindow = 2\n",
            "[[rule]]\nname = \"x\"\nmetric = \"sample.released\"\nabove = 1\nseverity = \"loud\"\n",
            "[[rule]]\nmetric = \"sample.released\"\nabove = 1\n",
        ];
        for toml in bad {
            let rs = RuleSet::from_toml(toml).unwrap();
            assert!(rs.compile().is_err(), "should reject: {toml}");
        }
    }

    #[test]
    fn threshold_groups_consecutive_boundaries() {
        let rs = one_rule("[[rule]]\nname = \"q\"\nmetric = \"sample.queue_depth\"\nabove = 10\n");
        let series = [
            row(1, 5, 0, 0),
            row(2, 11, 0, 0),
            row(3, 30, 0, 0),
            row(4, 2, 0, 0),
            row(5, 12, 0, 0),
        ];
        let rep = evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(rep.alerts.len(), 2);
        let a = &rep.alerts[0];
        assert_eq!((a.t_first_ns, a.t_last_ns), (2_000_000_000, 3_000_000_000));
        assert_eq!(a.samples, 2);
        assert_eq!(a.value, 30.0);
        assert!(!a.suppressed);
        assert_eq!(rep.alerts[1].t_first_ns, 5_000_000_000);
        assert_eq!(rep.active_at_or_above(Severity::Warn), 2);
        assert_eq!(rep.check(Severity::Critical).len(), 0, "warn < critical");
    }

    #[test]
    fn burn_rate_needs_full_window_fraction() {
        let rs = one_rule(
            "[[rule]]\nname = \"burn\"\nmetric = \"sample.queue_depth\"\nabove = 10\nwindow = 3\nfrac = 0.6\n",
        );
        // Boundaries: ok, bad, bad, ok, bad — windows of 3 with >= 2 bad
        // are (1,2,3) at t=3s... wait indexes: [5,20,20,5,20]
        let series = [
            row(1, 5, 0, 0),
            row(2, 20, 0, 0),
            row(3, 20, 0, 0),
            row(4, 5, 0, 0),
            row(5, 20, 0, 0),
        ];
        let rep = evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                ..AlertInputs::default()
            },
        )
        .unwrap();
        // Full windows: t=3 ([5,20,20] → 2/3 burns), t=4 ([20,20,5] →
        // 2/3 burns), t=5 ([20,5,20] → 2/3 burns). t=1,2 lack a window.
        assert_eq!(rep.alerts.len(), 1);
        let a = &rep.alerts[0];
        assert_eq!((a.t_first_ns, a.t_last_ns), (3_000_000_000, 5_000_000_000));
        assert_eq!(a.samples, 3);
    }

    #[test]
    fn suppression_window_attributes_and_splits_runs() {
        let rs = one_rule(
            "[[rule]]\nname = \"q\"\nmetric = \"sample.queue_depth\"\nabove = 10\nsuppress = [\"kill_worker\"]\nsuppress_window_secs = 2.0\n",
        );
        let series = [
            row(1, 20, 0, 0), // before the fault: active
            row(2, 20, 0, 0), // fault at t=2s: suppressed
            row(3, 20, 0, 0), // within 2s window: suppressed
            row(4, 20, 0, 0), // within window (t - 2s = 2s <= 2s): suppressed
            row(5, 20, 0, 0), // window expired: active again
        ];
        let faults = [FaultStamp {
            t_virtual_ns: 2_000_000_000,
            fault: "kill_worker".into(),
            info: "shard 1".into(),
        }];
        let rep = evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                faults: &faults,
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(rep.alerts.len(), 3, "{:?}", rep.alerts);
        assert!(!rep.alerts[0].suppressed);
        assert_eq!(rep.alerts[0].samples, 1);
        assert!(rep.alerts[1].suppressed);
        assert_eq!(rep.alerts[1].samples, 3);
        assert_eq!(rep.alerts[1].attributed_to, "kill_worker@2.0s");
        assert!(!rep.alerts[2].suppressed);
        // Only the unsuppressed runs gate.
        assert_eq!(rep.check(Severity::Warn).len(), 2);
        // A different fault kind does not suppress.
        let other = [FaultStamp {
            t_virtual_ns: 2_000_000_000,
            fault: "stall_feed".into(),
            info: String::new(),
        }];
        let rep2 = evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                faults: &other,
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(rep2.alerts.len(), 1);
        assert!(!rep2.alerts[0].suppressed);
    }

    fn fleet_report_with(series: Vec<SamplePoint>, miss_rate: f64) -> FleetReport {
        let mut rep =
            FleetReport::from_manifests("t", &[], &crate::fidelity::FidelityThresholds::default());
        rep.deadline_miss_rate = miss_rate;
        rep.telemetry = Some(FleetTelemetry {
            schema: TELEMETRY_SCHEMA,
            interval_ns: 1_000_000_000,
            evicted: 0,
            series,
            worst_clients: Vec::new(),
            hot_stations: Vec::new(),
        });
        rep
    }

    #[test]
    fn aggregate_rules_fire_and_suppress_without_windows() {
        let rs = one_rule(
            "[[rule]]\nname = \"miss\"\nmetric = \"fleet.deadline_miss_rate\"\nseverity = \"critical\"\nabove = 0.05\nsuppress = [\"stall_feed\"]\n",
        );
        let rep = fleet_report_with(Vec::new(), 0.2);
        let out = evaluate(
            &rs,
            &AlertInputs {
                report: Some(&rep),
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(out.alerts.len(), 1);
        assert!(!out.alerts[0].suppressed);
        assert_eq!(out.check(Severity::Critical).len(), 1);
        // Any matching fault suppresses the whole-run aggregate.
        let faults = [FaultStamp {
            t_virtual_ns: 40_000_000_000,
            fault: "stall_feed".into(),
            info: String::new(),
        }];
        let out2 = evaluate(
            &rs,
            &AlertInputs {
                report: Some(&rep),
                faults: &faults,
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert!(out2.alerts[0].suppressed);
        assert_eq!(out2.alerts[0].attributed_to, "stall_feed@40.0s");
        assert!(out2.check(Severity::Critical).is_empty());
        // Missing report is an evaluation error, not a silent pass.
        assert!(evaluate(&rs, &AlertInputs::default()).is_err());
    }

    #[test]
    fn baseline_delta_fires_on_drift_only() {
        let rs = one_rule(
            "[[rule]]\nname = \"drift\"\nmetric = \"sample.released\"\nbaseline_max_abs = 1\nbaseline_max_rel = 0.1\n",
        );
        let base = fleet_report_with(
            vec![row(1, 0, 100, 0), row(2, 0, 100, 0), row(3, 0, 100, 0)],
            0.0,
        );
        // t=2 drifts by 20 > 1 + 0.1·100 = 11; t=3 within tolerance.
        let series = [row(1, 0, 100, 0), row(2, 0, 120, 0), row(3, 0, 109, 0)];
        let out = evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                baseline: Some(&base),
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].t_first_ns, 2_000_000_000);
        assert_eq!(out.alerts[0].value, 120.0);
        // No baseline → evaluation error.
        assert!(evaluate(
            &rs,
            &AlertInputs {
                series: &series,
                ..AlertInputs::default()
            }
        )
        .is_err());
    }

    #[test]
    fn fleet_counter_rules_read_the_registry() {
        let rs = one_rule(
            "[[rule]]\nname = \"kills\"\nmetric = \"fleet.metrics.fault.worker_kills\"\nabove = 0\n",
        );
        let mut rep = fleet_report_with(Vec::new(), 0.0);
        rep.metrics.set_counter("fault.worker_kills", 2);
        let out = evaluate(
            &rs,
            &AlertInputs {
                report: Some(&rep),
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].value, 2.0);
        // Unknown counter is an error.
        rep.metrics = crate::MetricsRegistry::new();
        assert!(evaluate(
            &rs,
            &AlertInputs {
                report: Some(&rep),
                ..AlertInputs::default()
            }
        )
        .is_err());
    }

    #[test]
    fn exports_are_deterministic_and_round_trip() {
        let rs = RuleSet::builtin();
        let series = [row(1, 5, 10, 200_000_000), row(2, 7, 0, 0)];
        let mut rep = fleet_report_with(series.to_vec(), 0.9);
        rep.clients = 3;
        rep.released_packets = 10;
        let faults = [FaultStamp {
            t_virtual_ns: 1_000_000_000,
            fault: "kill_worker".into(),
            info: String::new(),
        }];
        let inputs = AlertInputs {
            series: &series,
            report: Some(&rep),
            faults: &faults,
            ..AlertInputs::default()
        };
        let a = evaluate(&rs, &inputs).unwrap();
        let b = evaluate(&rs, &inputs).unwrap();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.render_markdown(), b.render_markdown());
        let back = AlertReport::alerts_from_jsonl(&a.to_jsonl()).unwrap();
        assert_eq!(back, a.alerts);
        let md = a.render_markdown();
        assert!(md.contains("## Alerts"));
        assert!(md.contains("fleet-deadline-miss-rate"));
    }

    #[test]
    fn builtin_rules_compile() {
        assert!(RuleSet::builtin().compile().is_ok());
        // Quiet inputs: no alerts, gate passes.
        let rep = fleet_report_with(Vec::new(), 0.0);
        let out = evaluate(
            &RuleSet::builtin(),
            &AlertInputs {
                report: Some(&rep),
                ..AlertInputs::default()
            },
        )
        .unwrap();
        assert!(out.alerts.is_empty());
        assert!(out.check(Severity::Info).is_empty());
    }

    #[test]
    fn fault_stamps_parse_from_jsonl() {
        let text = "{\"t_virtual_ns\":5,\"fault\":\"kill_worker\",\"info\":\"x\"}\n\n";
        let stamps = parse_fault_stamps(text).unwrap();
        assert_eq!(stamps.len(), 1);
        assert_eq!(stamps[0].fault, "kill_worker");
        assert!(parse_fault_stamps("not json\n").is_err());
    }
}
