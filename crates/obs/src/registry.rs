//! The metrics registry: a named, ordered, serializable snapshot of
//! everything a pipeline stage measured.

use crate::metrics::HistSnapshot;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// A snapshot of named metrics — counters (integers), gauges (floats),
/// and histogram summaries — keyed by dotted stage-qualified names
/// (`"modulate.deadline_misses"`). Keys are kept sorted, so two
/// registries built from the same measurements serialize identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Set counter `name` to `v` (overwrites).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Add `v` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Store a histogram snapshot under `name`.
    pub fn set_hist(&mut self, name: &str, h: HistSnapshot) {
        self.hists.insert(name.to_string(), h);
    }

    /// Counter value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histogram snapshots, sorted by name.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &HistSnapshot)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of metrics recorded.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge `other` into `self`, prefixing every key with
    /// `"{prefix}."`. Counters add; gauges and histograms overwrite.
    pub fn merge(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add_counter(&format!("{prefix}.{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(&format!("{prefix}.{k}"), *v);
        }
        for (k, v) in &other.hists {
            self.set_hist(&format!("{prefix}.{k}"), v.clone());
        }
    }

    /// True when at least one metric under `"{prefix}."` has a nonzero
    /// value (counter > 0, gauge ≠ 0, or histogram with observations).
    pub fn has_nonzero(&self, prefix: &str) -> bool {
        let pre = format!("{prefix}.");
        self.counters
            .iter()
            .any(|(k, &v)| k.starts_with(&pre) && v > 0)
            || self
                .gauges
                .iter()
                .any(|(k, &v)| k.starts_with(&pre) && v != 0.0)
            || self
                .hists
                .iter()
                .any(|(k, v)| k.starts_with(&pre) && v.count > 0)
    }
}

fn map_to_value<T: Serialize>(m: &BTreeMap<String, T>) -> Value {
    Value::Object(m.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
}

fn map_from_value<T: Deserialize>(v: &Value, what: &str) -> Result<BTreeMap<String, T>, DeError> {
    let entries = v
        .as_object()
        .ok_or_else(|| DeError::new(format!("registry.{what}: expected object")))?;
    let mut out = BTreeMap::new();
    for (k, v) in entries {
        out.insert(k.clone(), T::deserialize(v)?);
    }
    Ok(out)
}

impl Serialize for MetricsRegistry {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("counters".to_string(), map_to_value(&self.counters)),
            ("gauges".to_string(), map_to_value(&self.gauges)),
            ("hists".to_string(), map_to_value(&self.hists)),
        ])
    }
}

impl Deserialize for MetricsRegistry {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("registry: expected object"))?;
        let need = |name: &str| {
            Value::field(entries, name)
                .ok_or_else(|| DeError::new(format!("registry: missing field {name}")))
        };
        Ok(MetricsRegistry {
            counters: map_from_value(need("counters")?, "counters")?,
            gauges: map_from_value(need("gauges")?, "gauges")?,
            hists: map_from_value(need("hists")?, "hists")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Hist;

    #[test]
    fn registry_roundtrips_and_sorts() {
        let mut r = MetricsRegistry::new();
        r.set_counter("z.last", 3);
        r.set_counter("a.first", 1);
        r.set_gauge("m.load", 0.75);
        let mut h = Hist::new(0.0, 10.0, 5);
        h.observe(4.0);
        r.set_hist("m.delay", h.snapshot());

        let json = serde_json::to_string_pretty(&r).unwrap();
        // Sorted key order in the serialized form.
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.counter("a.first"), Some(1));
        assert_eq!(back.gauge("m.load"), Some(0.75));
        assert_eq!(back.hist("m.delay").unwrap().count, 1);
    }

    #[test]
    fn merge_prefixes_and_adds() {
        let mut stage = MetricsRegistry::new();
        stage.set_counter("events", 10);
        stage.set_gauge("depth", 4.0);
        let mut root = MetricsRegistry::new();
        root.merge("netsim", &stage);
        root.merge("netsim", &stage); // counters accumulate
        assert_eq!(root.counter("netsim.events"), Some(20));
        assert_eq!(root.gauge("netsim.depth"), Some(4.0));
        assert!(root.has_nonzero("netsim"));
        assert!(!root.has_nonzero("wavelan"));
    }
}
