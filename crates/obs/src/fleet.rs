//! The aggregate fleet fidelity report (`tracemod fleet --obs-out`).
//!
//! A fleet run produces one [`RunManifest`] per client (trial = client
//! index); this module folds them into a single machine-readable
//! summary: fleet-wide packet totals, the distribution of per-client
//! fidelity (worst and released-weighted mean p95 delay error), and
//! counts of clients whose own fidelity gate failed. Like the per-run
//! manifest, everything except the [`RunnerSection`] derives purely
//! from simulation state, so [`FleetReport::deterministic_json`] is
//! byte-identical across worker counts and shard layouts.

use crate::fidelity::FidelityThresholds;
use crate::manifest::{RunManifest, RunnerSection};
use crate::registry::MetricsRegistry;
use crate::telemetry::FleetTelemetry;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Fleet-report schema version, bumped on incompatible layout changes.
pub const FLEET_SCHEMA: u32 = 1;

/// How many clients ran one channel-model realization — the per-family
/// breakdown of a mixed-radio fleet (scenario packs assign different
/// model specs to different client shares).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUsage {
    /// Registered model-family name.
    pub family: String,
    /// Canonical `key=value` parameter string for this spec.
    pub params: String,
    /// Clients whose channel came from this spec.
    pub clients: u32,
}

/// Aggregate fidelity and accounting across a whole fleet of clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Schema version ([`FLEET_SCHEMA`]).
    pub schema: u32,
    /// Scenario every client walked.
    pub scenario: String,
    /// Number of clients aggregated.
    pub clients: u32,
    /// Sum of modulated packets across clients.
    pub modulated_packets: u64,
    /// Sum of released (delayed then dispatched) packets.
    pub released_packets: u64,
    /// Sum of packets dropped by the loss processes.
    pub dropped_packets: u64,
    /// Sum of deadline misses.
    pub deadline_misses: u64,
    /// Fleet-wide deadline-miss rate (misses / released).
    pub deadline_miss_rate: f64,
    /// Released-weighted mean of per-client |delay error| p95 (ms).
    pub mean_abs_delay_error_p95_ms: f64,
    /// Worst per-client |delay error| p95 (ms).
    pub worst_abs_delay_error_p95_ms: f64,
    /// Clients whose own fidelity gate
    /// ([`FidelityReport::check`](crate::fidelity::FidelityReport::check))
    /// failed.
    pub failed_clients: u32,
    /// Clients whose run degraded (sustained starvation).
    pub degraded_clients: u32,
    /// Client index owning the worst |delay error| p95 (`None` for an
    /// empty fleet).
    #[serde(default)]
    pub worst_p95_client: Option<u32>,
    /// Channel-model breakdown in first-seen client order (empty when
    /// manifests predate model attribution). Mirrored into
    /// `fleet.model_clients.<family>` counters for alert selectors.
    #[serde(default)]
    pub models: Vec<ModelUsage>,
    /// Fleet-level deterministic metrics (station traffic, engine
    /// event totals, arena peaks that are layout-invariant).
    pub metrics: MetricsRegistry,
    /// Live telemetry series and outlier trackers, present when the
    /// run sampled telemetry. Deterministic (virtual-time sampled),
    /// so it stays in [`deterministic_json`](FleetReport::deterministic_json).
    #[serde(default)]
    pub telemetry: Option<FleetTelemetry>,
    /// Wall-clock runner measurements, excluded from
    /// [`deterministic_json`](FleetReport::deterministic_json).
    #[serde(default)]
    pub runner: Option<RunnerSection>,
}

impl FleetReport {
    /// Fold per-client manifests (trial = client index, in client
    /// order) into the aggregate report. `thresholds` drives the
    /// per-client pass/fail tally.
    pub fn from_manifests(
        scenario: &str,
        manifests: &[RunManifest],
        thresholds: &FidelityThresholds,
    ) -> Self {
        let mut r = FleetReport {
            schema: FLEET_SCHEMA,
            scenario: scenario.to_string(),
            clients: manifests.len() as u32,
            modulated_packets: 0,
            released_packets: 0,
            dropped_packets: 0,
            deadline_misses: 0,
            deadline_miss_rate: 0.0,
            mean_abs_delay_error_p95_ms: 0.0,
            worst_abs_delay_error_p95_ms: 0.0,
            failed_clients: 0,
            degraded_clients: 0,
            worst_p95_client: None,
            models: Vec::new(),
            metrics: MetricsRegistry::new(),
            telemetry: None,
            runner: None,
        };
        let mut weighted_p95 = 0.0f64;
        for m in manifests {
            let f = &m.fidelity;
            r.modulated_packets += f.modulated_packets;
            r.released_packets += f.released_packets;
            r.dropped_packets += f.dropped_packets;
            r.deadline_misses += f.deadline_misses;
            weighted_p95 += f.abs_delay_error_p95_ms * f.released_packets as f64;
            if r.worst_p95_client.is_none()
                || f.abs_delay_error_p95_ms > r.worst_abs_delay_error_p95_ms
            {
                r.worst_abs_delay_error_p95_ms = f.abs_delay_error_p95_ms;
                r.worst_p95_client = Some(m.trial);
            }
            if !f.check(thresholds).is_empty() {
                r.failed_clients += 1;
            }
            if f.degraded {
                r.degraded_clients += 1;
            }
            if let Some(mi) = &m.model {
                match r
                    .models
                    .iter_mut()
                    .find(|u| u.family == mi.family && u.params == mi.params)
                {
                    Some(u) => u.clients += 1,
                    None => r.models.push(ModelUsage {
                        family: mi.family.clone(),
                        params: mi.params.clone(),
                        clients: 1,
                    }),
                }
            }
        }
        let tallies: Vec<(String, u64)> = r
            .models
            .iter()
            .map(|u| {
                (
                    format!("fleet.model_clients.{}", u.family),
                    u.clients as u64,
                )
            })
            .collect();
        for (name, n) in tallies {
            r.metrics.add_counter(&name, n);
        }
        if r.released_packets > 0 {
            r.deadline_miss_rate = r.deadline_misses as f64 / r.released_packets as f64;
            r.mean_abs_delay_error_p95_ms = weighted_p95 / r.released_packets as f64;
        }
        r
    }

    /// The fleet fidelity gate: every client must pass its own gate,
    /// and the fleet-wide miss rate and worst p95 must clear the same
    /// thresholds a single run is held to. Returns the violations
    /// (empty = pass).
    ///
    /// A report with no evidence cannot pass: an empty fleet, or a
    /// fleet that released nothing, is a "no data" violation rather
    /// than a vacuous green.
    pub fn check(&self, th: &FidelityThresholds) -> Vec<String> {
        let mut out = Vec::new();
        if self.clients == 0 {
            out.push("no data: fleet has zero clients".to_string());
            return out;
        }
        if self.released_packets == 0 {
            out.push(format!(
                "no data: {} clients released zero packets",
                self.clients
            ));
            return out;
        }
        if self.failed_clients > 0 {
            out.push(format!(
                "{} of {} clients failed the per-client fidelity gate",
                self.failed_clients, self.clients
            ));
        }
        if self.worst_abs_delay_error_p95_ms > th.max_abs_delay_error_p95_ms {
            out.push(format!(
                "worst per-client delay-error p95 {:.2} ms exceeds {:.2} ms",
                self.worst_abs_delay_error_p95_ms, th.max_abs_delay_error_p95_ms
            ));
        }
        if self.deadline_miss_rate > th.max_deadline_miss_rate {
            out.push(format!(
                "fleet deadline-miss rate {:.4} exceeds {:.4}",
                self.deadline_miss_rate, th.max_deadline_miss_rate
            ));
        }
        out
    }

    /// Pretty-printed JSON form (what `--obs-out` writes).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serializes")
    }

    /// Parse a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Compact JSON with the wall-clock runner section stripped: equal
    /// runs produce equal bytes regardless of machine, worker count,
    /// or shard layout.
    pub fn deterministic_json(&self) -> String {
        let mut clone = self.clone();
        clone.runner = None;
        serde_json::to_string(&clone).expect("fleet report serializes")
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fleet report: {} × {}", self.scenario, self.clients);
        let _ = writeln!(
            s,
            "  packets: {} modulated, {} released, {} dropped",
            self.modulated_packets, self.released_packets, self.dropped_packets
        );
        let _ = writeln!(
            s,
            "  delay-error p95: mean {:.2} ms, worst {:.2} ms",
            self.mean_abs_delay_error_p95_ms, self.worst_abs_delay_error_p95_ms
        );
        let _ = writeln!(
            s,
            "  deadline misses: {} ({:.4} rate)",
            self.deadline_misses, self.deadline_miss_rate
        );
        let _ = writeln!(
            s,
            "  clients: {} failed gate, {} degraded",
            self.failed_clients, self.degraded_clients
        );
        for u in &self.models {
            let _ = writeln!(
                s,
                "  model {} [{}]: {} clients",
                u.family, u.params, u.clients
            );
        }
        for (k, v) in self.metrics.counters() {
            let _ = writeln!(s, "  {k} = {v}");
        }
        if let Some(r) = &self.runner {
            let _ = writeln!(
                s,
                "  runner: {:.2}s wall × {} workers",
                r.wall_secs, r.workers
            );
        }
        s
    }

    /// Markdown report: the dedicated fleet section (client count,
    /// worst-p95 client, failed/degraded tallies) plus — when the run
    /// sampled telemetry — the shared sparkline/table section from
    /// [`FleetTelemetry::render_markdown_section`].
    pub fn render_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## Fleet report — `{}`\n", self.scenario);
        let _ = writeln!(s, "| metric | value |");
        let _ = writeln!(s, "|---|---|");
        let _ = writeln!(s, "| clients | {} |", self.clients);
        let _ = writeln!(s, "| modulated packets | {} |", self.modulated_packets);
        let _ = writeln!(s, "| released packets | {} |", self.released_packets);
        let _ = writeln!(s, "| dropped packets | {} |", self.dropped_packets);
        let _ = writeln!(
            s,
            "| deadline misses | {} ({:.4} rate) |",
            self.deadline_misses, self.deadline_miss_rate
        );
        let _ = writeln!(
            s,
            "| mean \\|delay err\\| p95 | {:.2} ms |",
            self.mean_abs_delay_error_p95_ms
        );
        match self.worst_p95_client {
            Some(c) => {
                let _ = writeln!(
                    s,
                    "| worst \\|delay err\\| p95 | {:.2} ms (client {c}) |",
                    self.worst_abs_delay_error_p95_ms
                );
            }
            None => {
                let _ = writeln!(s, "| worst \\|delay err\\| p95 | n/a (no clients) |");
            }
        }
        let _ = writeln!(s, "| failed clients | {} |", self.failed_clients);
        let _ = writeln!(s, "| degraded clients | {} |", self.degraded_clients);
        if !self.models.is_empty() {
            let _ = writeln!(s, "\n### Channel models\n");
            let _ = writeln!(s, "| family | params | clients |");
            let _ = writeln!(s, "|---|---|---|");
            for u in &self.models {
                let _ = writeln!(s, "| `{}` | `{}` | {} |", u.family, u.params, u.clients);
            }
        }
        let counters: Vec<_> = self.metrics.counters().collect();
        if !counters.is_empty() {
            let _ = writeln!(s, "\n### Fleet counters\n");
            let _ = writeln!(s, "| counter | value |");
            let _ = writeln!(s, "|---|---|");
            for (k, v) in counters {
                let _ = writeln!(s, "| `{k}` | {v} |");
            }
        }
        if let Some(tel) = &self.telemetry {
            let _ = writeln!(s);
            s.push_str(&tel.render_markdown_section());
        }
        if let Some(r) = &self.runner {
            let _ = writeln!(
                s,
                "\n*Runner: {:.2} s wall × {} workers.*",
                r.wall_secs, r.workers
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FidelityCollector;

    fn manifest(trial: u32, err_ms: f64, releases: u64) -> RunManifest {
        let mut fc = FidelityCollector::new();
        for _ in 0..releases {
            fc.on_modulated(0.0);
            fc.on_release(err_ms, false);
        }
        let mut m = RunManifest::new("porter_walk", "fleet-probe", trial);
        m.fidelity = fc.report();
        m
    }

    #[test]
    fn aggregates_weighted_and_worst_p95() {
        let manifests = vec![manifest(0, 1.0, 300), manifest(1, 3.0, 100)];
        let r =
            FleetReport::from_manifests("porter_walk", &manifests, &FidelityThresholds::default());
        assert_eq!(r.clients, 2);
        assert_eq!(r.released_packets, 400);
        assert!(r.worst_abs_delay_error_p95_ms >= 2.5);
        assert!(r.mean_abs_delay_error_p95_ms < r.worst_abs_delay_error_p95_ms);
        assert_eq!(r.failed_clients, 0);
        assert!(r.check(&FidelityThresholds::default()).is_empty());
    }

    #[test]
    fn failing_client_fails_the_fleet_gate() {
        let manifests = vec![manifest(0, 1.0, 300), manifest(1, 50.0, 300)];
        let th = FidelityThresholds::default();
        let r = FleetReport::from_manifests("porter_walk", &manifests, &th);
        assert_eq!(r.failed_clients, 1);
        let violations = r.check(&th);
        assert!(!violations.is_empty());
        assert!(violations[0].contains("1 of 2 clients"));
    }

    #[test]
    fn empty_fleet_is_no_data_not_a_pass() {
        let th = FidelityThresholds::default();
        let r = FleetReport::from_manifests("porter_walk", &[], &th);
        assert_eq!(r.clients, 0);
        assert_eq!(r.deadline_miss_rate, 0.0);
        assert!(r.mean_abs_delay_error_p95_ms.is_finite());
        assert!(r.worst_p95_client.is_none());
        let v = r.check(&th);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no data"));
        assert!(v[0].contains("zero clients"));
    }

    #[test]
    fn zero_released_is_no_data_not_a_pass() {
        let th = FidelityThresholds::default();
        let manifests = vec![manifest(0, 0.0, 0), manifest(1, 0.0, 0)];
        let r = FleetReport::from_manifests("porter_walk", &manifests, &th);
        assert_eq!(r.clients, 2);
        assert_eq!(r.released_packets, 0);
        assert!(!r.deadline_miss_rate.is_nan());
        assert!(!r.mean_abs_delay_error_p95_ms.is_nan());
        let v = r.check(&th);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no data"));
        assert!(v[0].contains("released zero packets"));
    }

    #[test]
    fn worst_client_is_identified() {
        let manifests = vec![
            manifest(0, 1.0, 300),
            manifest(1, 3.0, 100),
            manifest(2, 2.0, 50),
        ];
        let r =
            FleetReport::from_manifests("porter_walk", &manifests, &FidelityThresholds::default());
        assert_eq!(r.worst_p95_client, Some(1));
        let md = r.render_markdown();
        assert!(md.contains("## Fleet report"));
        assert!(md.contains("(client 1)"));
        assert!(md.contains("| clients | 3 |"));
    }

    #[test]
    fn model_usage_aggregates_in_first_seen_order() {
        let mut a = manifest(0, 1.0, 10);
        a.set_model("leo", "pass_secs=45");
        let mut b = manifest(1, 1.0, 10);
        b.set_model("errant", "operator=op2 rat=4g");
        let mut c = manifest(2, 1.0, 10);
        c.set_model("leo", "pass_secs=45");
        let r = FleetReport::from_manifests("leo-mix", &[a, b, c], &FidelityThresholds::default());
        assert_eq!(r.models.len(), 2);
        assert_eq!(r.models[0].family, "leo");
        assert_eq!(r.models[0].clients, 2);
        assert_eq!(r.models[1].family, "errant");
        assert_eq!(r.models[1].clients, 1);
        assert_eq!(r.metrics.counter("fleet.model_clients.leo"), Some(2));
        assert_eq!(r.metrics.counter("fleet.model_clients.errant"), Some(1));
        let md = r.render_markdown();
        assert!(md.contains("### Channel models"));
        assert!(md.contains("| `errant` | `operator=op2 rat=4g` | 1 |"));
        let txt = r.render_text();
        assert!(txt.contains("model leo [pass_secs=45]: 2 clients"));
    }

    #[test]
    fn report_without_models_field_parses() {
        let manifests = vec![manifest(0, 1.0, 10)];
        let r =
            FleetReport::from_manifests("porter_walk", &manifests, &FidelityThresholds::default());
        assert!(r.models.is_empty());
        // Old reports (pre-models JSON) must still deserialize.
        let json = r.deterministic_json();
        assert!(json.contains("\"models\":[]"), "{json}");
        let stripped = json.replace("\"models\":[],", "");
        let parsed = FleetReport::from_json(&stripped).unwrap();
        assert!(parsed.models.is_empty());
    }

    #[test]
    fn deterministic_json_strips_runner() {
        let manifests = vec![manifest(0, 1.0, 10)];
        let mut r =
            FleetReport::from_manifests("porter_walk", &manifests, &FidelityThresholds::default());
        let det = r.deterministic_json();
        r.runner = Some(RunnerSection {
            wall_secs: 1.23,
            workers: 8,
            records_per_sec: 0.0,
            worker_utilization: 0.5,
        });
        assert_eq!(r.deterministic_json(), det);
        let parsed = FleetReport::from_json(&r.to_json_pretty()).unwrap();
        assert_eq!(parsed, r);
    }
}
