//! # obs — observability substrate for the emulation pipeline
//!
//! The paper's central claim is that trace modulation *faithfully*
//! reproduces collected network conditions; this crate turns that claim
//! into an always-on, machine-readable health signal. It provides:
//!
//! * [`Counter`] / [`Gauge`] — atomic scalar metrics for wall-clock
//!   (runner-side) accounting;
//! * [`Hist`] — a fixed-bucket histogram built on
//!   [`netsim::stats::Histogram`] + [`netsim::stats::Summary`] (exact
//!   p50/p95/p99 via retained samples — no duplicated math);
//! * [`SpanTimer`] — span timing keyed to **virtual** time
//!   ([`netsim::SimTime`]), so measurements are identical however the
//!   host schedules worker threads;
//! * [`MetricsRegistry`] — a serializable snapshot of named counters,
//!   gauges, and histogram summaries, mergeable under a stage prefix;
//! * [`JsonlSink`] — an append-only JSON-lines event sink;
//! * [`FidelityCollector`] / [`FidelityReport`] — the modulation-layer
//!   self-check (intended-vs-actual delay error percentiles, deadline
//!   misses, drift clamps, loss-rate delta vs the replay trace) with
//!   [`FidelityThresholds`] for CI gating;
//! * [`RunManifest`] — the per-run artifact (`tracemod --obs-out`)
//!   separating deterministic sim-path metrics from the wall-clock
//!   runner section, so serial and parallel executions of the same
//!   cell compare bitwise equal on
//!   [`deterministic_json`](RunManifest::deterministic_json);
//! * [`flight`] — the packet-lifecycle flight recorder: a bounded,
//!   virtual-time ring of per-packet spans across every pipeline
//!   stage, exportable as Chrome trace-event / Perfetto JSON and
//!   queryable as a [`PacketJourney`];
//! * [`mod@bench`] — cross-run benchmark regression tracking
//!   (`tracemod bench-diff` against a committed `BENCH_baseline.json`)
//!   plus the same-run [`OverheadGate`];
//! * [`telemetry`] — the fleet telemetry plane: per-shard virtual-time
//!   sample rings merged into a layout-invariant [`FleetTelemetry`]
//!   (JSONL / Prometheus / markdown sparklines) with space-saving
//!   [`TopK`] outlier tracking;
//! * [`profile`] — an opt-in scoped wall-clock [`Profiler`] with
//!   flamegraph collapsed-stack output for the fleet hot paths;
//! * [`alerts`] — the fidelity SLO engine: declarative TOML/JSON rules
//!   (thresholds, windowed burn rates, delta-vs-baseline) evaluated in
//!   virtual time over the telemetry series and fleet aggregates, with
//!   chaos-aware suppression windows keyed off injected-fault
//!   timestamps, exported as byte-deterministic JSONL + markdown;
//! * [`diff`] — cross-run divergence forensics: a first-divergence
//!   finder that walks two runs' artifacts in lockstep and names the
//!   earliest differing field with virtual-time / client / shard
//!   context (`tracemod diff-runs`).
//!
//! **Determinism rule**: everything under [`RunManifest::metrics`] and
//! [`RunManifest::fidelity`] must derive only from simulation state
//! (virtual time, event counts, per-cell RNG streams). Wall-clock
//! readings belong exclusively in [`RunnerSection`].

#![warn(missing_docs)]

pub mod alerts;
pub mod bench;
pub mod diff;
pub mod fidelity;
pub mod fleet;
pub mod flight;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod telemetry;

pub use alerts::{
    evaluate as evaluate_alerts, Alert, AlertInputs, AlertReport, FaultStamp, RuleSet, Severity,
    ALERTS_SCHEMA,
};
pub use bench::{BenchDiff, BenchDiffConfig, BenchRecord, BenchStatus, BenchVerdict, OverheadGate};
pub use diff::{diff_artifacts, ArtifactKind, DiffOptions, Divergence};
pub use fidelity::{FidelityCollector, FidelityReport, FidelityThresholds};
pub use fleet::{FleetReport, ModelUsage, FLEET_SCHEMA};
pub use flight::{FlightHandle, FlightRecord, FlightRecorder, PacketId, PacketJourney, Stage};
pub use manifest::{ModelInfo, RunManifest, RunnerSection, MANIFEST_SCHEMA};
pub use metrics::{Counter, Gauge, Hist, HistSnapshot};
pub use profile::{ProfEntry, Profiler};
pub use registry::MetricsRegistry;
pub use sink::{Event, JsonlSink, SharedSink};
pub use span::SpanTimer;
pub use telemetry::{
    FleetTelemetry, SampleInputs, SamplePoint, ShardTelemetry, TelemetryConfig, TopEntry, TopK,
    TELEMETRY_SCHEMA,
};
