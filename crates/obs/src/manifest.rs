//! The per-run observability manifest (`tracemod --obs-out`).

use crate::fidelity::{FidelityReport, FidelityThresholds};
use crate::registry::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Manifest schema version, bumped on incompatible layout changes.
pub const MANIFEST_SCHEMA: u32 = 1;

/// Wall-clock runner measurements. Everything in here may differ from
/// run to run and between worker counts; it is excluded from
/// [`RunManifest::deterministic_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerSection {
    /// Wall-clock duration of the run, in seconds.
    pub wall_secs: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Trace records processed per wall-clock second.
    pub records_per_sec: f64,
    /// Fraction of worker-seconds spent executing cells (1.0 = all
    /// workers busy the whole run).
    pub worker_utilization: f64,
}

/// The channel model that produced a run's conditions, identified by
/// its registry family name + canonical parameter string — the stable
/// attribution key alerts and `diff-runs` group divergences by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registered model-family name ("piecewise", "errant", "leo", …).
    pub family: String,
    /// Canonical `key=value` parameter string (sorted keys; may be
    /// empty for all-defaults builds).
    pub params: String,
}

/// The machine-readable record of one emulation run: deterministic
/// sim-path metrics and fidelity self-check, plus an optional
/// wall-clock runner section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// Scenario name (e.g. `"porter_walk"`).
    pub scenario: String,
    /// Benchmark/workload name driving the run.
    pub benchmark: String,
    /// Trial index within the scenario.
    pub trial: u32,
    /// Stage-prefixed deterministic metrics
    /// (`netsim.*`, `wavelan.*`, `distill.*`, `modulate.*`, `emu.*`).
    pub metrics: MetricsRegistry,
    /// Modulation-layer fidelity self-check.
    pub fidelity: FidelityReport,
    /// The channel model behind this run (deterministic; part of the
    /// byte-identity surface). Absent in pre-registry manifests.
    #[serde(default)]
    pub model: Option<ModelInfo>,
    /// Wall-clock runner section; `None` in deterministic comparisons.
    #[serde(default)]
    pub runner: Option<RunnerSection>,
}

impl RunManifest {
    /// An empty manifest for the given run identity.
    pub fn new(scenario: &str, benchmark: &str, trial: u32) -> Self {
        RunManifest {
            schema: MANIFEST_SCHEMA,
            scenario: scenario.to_string(),
            benchmark: benchmark.to_string(),
            trial,
            metrics: MetricsRegistry::new(),
            fidelity: FidelityReport::empty(),
            model: None,
            runner: None,
        }
    }

    /// Record the channel model behind this run.
    pub fn set_model(&mut self, family: &str, params: &str) {
        self.model = Some(ModelInfo {
            family: family.to_string(),
            params: params.to_string(),
        });
    }

    /// Pretty-printed JSON form (what `--obs-out` writes).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Parse a manifest from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad run manifest: {e}"))
    }

    /// Compact JSON with the wall-clock section stripped — the form two
    /// runs of the same cell must match **byte for byte**, regardless
    /// of `--jobs`.
    pub fn deterministic_json(&self) -> String {
        let mut c = self.clone();
        c.runner = None;
        serde_json::to_string(&c).unwrap_or_default()
    }

    /// Check the fidelity section against `th` (empty = pass).
    pub fn check(&self, th: &FidelityThresholds) -> Vec<String> {
        self.fidelity.check(th)
    }

    /// Human-readable report (the `tracemod obs-report` output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let f = &self.fidelity;
        let _ = writeln!(
            s,
            "run manifest (schema {}): scenario={} benchmark={} trial={}",
            self.schema, self.scenario, self.benchmark, self.trial
        );
        if let Some(m) = &self.model {
            let _ = writeln!(s, "channel model: {} [{}]", m.family, m.params);
        }

        let _ = writeln!(s, "\n-- fidelity self-check --");
        let _ = writeln!(
            s,
            "  packets:        offered {}  modulated {}  unmodulated {} ({:.1}%)",
            f.modulated_packets + f.unmodulated_packets,
            f.modulated_packets,
            f.unmodulated_packets,
            f.unmodulated_fraction * 100.0
        );
        let _ = writeln!(
            s,
            "  released:       {}   dropped: {}",
            f.released_packets, f.dropped_packets
        );
        let _ = writeln!(
            s,
            "  delay error:    mean {:+.3} ms  (min {:+.3} / max {:+.3})",
            f.delay_error_ms.mean, f.delay_error_ms.min, f.delay_error_ms.max
        );
        let _ = writeln!(
            s,
            "  |delay error|:  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
            f.abs_delay_error_p50_ms, f.abs_delay_error_p95_ms, f.abs_delay_error_p99_ms
        );
        let _ = writeln!(
            s,
            "  deadlines:      {} missed (rate {:.4})",
            f.deadline_misses, f.deadline_miss_rate
        );
        let _ = writeln!(
            s,
            "  corrections:    {} drift clamps, {} delay-compensated",
            f.drift_clamps, f.compensated_packets
        );
        let _ = writeln!(
            s,
            "  loss rate:      expected {:.4}  observed {:.4}  delta {:+.4}",
            f.expected_loss_rate, f.observed_loss_rate, f.loss_delta
        );
        if f.degraded {
            let _ = writeln!(
                s,
                "  degraded:       YES ({} starvation holds — stale tuples replayed)",
                f.starvation_holds
            );
        }
        let violations = self.check(&FidelityThresholds::default());
        if violations.is_empty() {
            let _ = writeln!(s, "  self-check:     PASS (default thresholds)");
        } else {
            let _ = writeln!(s, "  self-check:     FAIL");
            for v in &violations {
                let _ = writeln!(s, "    - {v}");
            }
        }

        let _ = writeln!(s, "\n-- metrics ({} recorded) --", self.metrics.len());
        let counters: Vec<_> = self.metrics.counters().collect();
        if !counters.is_empty() {
            let _ = writeln!(s, "  counters:");
            for (k, v) in counters {
                let _ = writeln!(s, "    {k:<42} {v}");
            }
        }
        let gauges: Vec<_> = self.metrics.gauges().collect();
        if !gauges.is_empty() {
            let _ = writeln!(s, "  gauges:");
            for (k, v) in gauges {
                let _ = writeln!(s, "    {k:<42} {v:.4}");
            }
        }
        let hists: Vec<_> = self.metrics.hists().collect();
        if !hists.is_empty() {
            let _ = writeln!(s, "  histograms:");
            for (k, h) in hists {
                let _ = writeln!(
                    s,
                    "    {k:<42} n={} mean={:.4} p95={:.4}",
                    h.count, h.mean, h.p95
                );
            }
        }

        match &self.runner {
            Some(r) => {
                let _ = writeln!(s, "\n-- runner (wall clock; non-deterministic) --");
                let _ = writeln!(s, "  wall time:      {:.3} s", r.wall_secs);
                let _ = writeln!(s, "  workers:        {}", r.workers);
                let _ = writeln!(s, "  records/sec:    {:.1}", r.records_per_sec);
                let _ = writeln!(s, "  utilization:    {:.3}", r.worker_utilization);
            }
            None => {
                let _ = writeln!(s, "\n-- runner: absent (deterministic form) --");
            }
        }
        s
    }

    /// Markdown report (the `tracemod obs-report --format md` output) —
    /// suitable for pasting into a PR description or CI job summary.
    pub fn render_markdown(&self) -> String {
        let mut s = String::new();
        let f = &self.fidelity;
        let _ = writeln!(
            s,
            "## Run manifest: `{}` / `{}` trial {} (schema {})\n",
            self.scenario, self.benchmark, self.trial, self.schema
        );
        if let Some(m) = &self.model {
            let _ = writeln!(s, "Channel model: `{}` [{}]\n", m.family, m.params);
        }

        let _ = writeln!(s, "### Fidelity self-check\n");
        let _ = writeln!(s, "| metric | value |");
        let _ = writeln!(s, "|---|---|");
        let _ = writeln!(
            s,
            "| packets offered | {} ({} modulated, {} unmodulated) |",
            f.modulated_packets + f.unmodulated_packets,
            f.modulated_packets,
            f.unmodulated_packets
        );
        let _ = writeln!(
            s,
            "| released / dropped | {} / {} |",
            f.released_packets, f.dropped_packets
        );
        let _ = writeln!(
            s,
            "| delay error (ms) | mean {:+.3}, min {:+.3}, max {:+.3} |",
            f.delay_error_ms.mean, f.delay_error_ms.min, f.delay_error_ms.max
        );
        let _ = writeln!(
            s,
            "| abs delay error (ms) | p50 {:.3}, p95 {:.3}, p99 {:.3} |",
            f.abs_delay_error_p50_ms, f.abs_delay_error_p95_ms, f.abs_delay_error_p99_ms
        );
        let _ = writeln!(
            s,
            "| deadline misses | {} (rate {:.4}) |",
            f.deadline_misses, f.deadline_miss_rate
        );
        let _ = writeln!(
            s,
            "| loss rate | expected {:.4}, observed {:.4} (delta {:+.4}) |",
            f.expected_loss_rate, f.observed_loss_rate, f.loss_delta
        );
        if f.degraded {
            let _ = writeln!(
                s,
                "| degraded | YES ({} starvation holds) |",
                f.starvation_holds
            );
        }
        let violations = self.check(&FidelityThresholds::default());
        if violations.is_empty() {
            let _ = writeln!(s, "\n**Self-check: PASS** (default thresholds)");
        } else {
            let _ = writeln!(s, "\n**Self-check: FAIL**");
            for v in &violations {
                let _ = writeln!(s, "- {v}");
            }
        }

        let _ = writeln!(s, "\n### Metrics ({} recorded)\n", self.metrics.len());
        let _ = writeln!(s, "| name | value |");
        let _ = writeln!(s, "|---|---|");
        for (k, v) in self.metrics.counters() {
            let _ = writeln!(s, "| `{k}` | {v} |");
        }
        for (k, v) in self.metrics.gauges() {
            let _ = writeln!(s, "| `{k}` | {v:.4} |");
        }
        for (k, h) in self.metrics.hists() {
            let _ = writeln!(
                s,
                "| `{k}` | n={} mean={:.4} p95={:.4} |",
                h.count, h.mean, h.p95
            );
        }

        match &self.runner {
            Some(r) => {
                let _ = writeln!(s, "\n### Runner (wall clock; non-deterministic)\n");
                let _ = writeln!(
                    s,
                    "{:.3} s wall, {} workers, {:.1} records/sec, {:.3} utilization",
                    r.wall_secs, r.workers, r.records_per_sec, r.worker_utilization
                );
            }
            None => {
                let _ = writeln!(s, "\n*Runner section absent (deterministic form).*");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::FidelityCollector;

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("porter_walk", "web", 0);
        m.metrics.set_counter("netsim.events", 420);
        m.metrics.set_gauge("modulate.buffer_peak", 3.0);
        let mut fc = FidelityCollector::new();
        for _ in 0..10 {
            fc.on_modulated(0.05);
            fc.on_release(1.5, false);
        }
        m.fidelity = fc.report();
        m
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let mut m = sample_manifest();
        m.runner = Some(RunnerSection {
            wall_secs: 1.25,
            workers: 8,
            records_per_sec: 1000.0,
            worker_utilization: 0.9,
        });
        let back = RunManifest::from_json(&m.to_json_pretty()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.schema, MANIFEST_SCHEMA);
    }

    #[test]
    fn deterministic_json_strips_runner() {
        let mut a = sample_manifest();
        let mut b = sample_manifest();
        a.runner = Some(RunnerSection {
            wall_secs: 0.5,
            workers: 1,
            records_per_sec: 10.0,
            worker_utilization: 1.0,
        });
        b.runner = Some(RunnerSection {
            wall_secs: 9.0,
            workers: 8,
            records_per_sec: 99.0,
            worker_utilization: 0.2,
        });
        assert_ne!(a, b);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(!a.deterministic_json().contains("wall_secs"));
    }

    #[test]
    fn manifest_without_runner_field_parses() {
        let m = sample_manifest();
        let json = m.deterministic_json();
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(back.runner, None);
        assert_eq!(back.metrics.counter("netsim.events"), Some(420));
    }

    #[test]
    fn render_text_has_all_sections() {
        let m = sample_manifest();
        let text = m.render_text();
        assert!(text.contains("fidelity self-check"));
        assert!(text.contains("netsim.events"));
        assert!(text.contains("PASS"));
        assert!(text.contains("deterministic form"));
    }

    #[test]
    fn render_markdown_has_tables_and_verdict() {
        let m = sample_manifest();
        let md = m.render_markdown();
        assert!(md.contains("## Run manifest: `porter_walk` / `web` trial 0"));
        assert!(md.contains("| metric | value |"));
        assert!(md.contains("| `netsim.events` | 420 |"));
        assert!(md.contains("**Self-check: PASS**"));
        assert!(md.contains("deterministic form"));
    }
}
