//! Cross-run benchmark regression tracking.
//!
//! The criterion shim emits one JSON line per benchmark
//! (`{"name": ..., "median_ns_per_iter": ...}`) into the file named by
//! `$BENCH_JSON`. This module compares such a file against a committed
//! baseline (`BENCH_baseline.json`) with per-metric tolerance bands
//! and produces machine-readable verdicts, so CI can fail on a real
//! regression instead of eyeballing numbers.
//!
//! Timing on shared CI runners is noisy, so the default band is wide
//! (a 3× ratio); a baseline line may carry its own
//! `"tolerance_ratio"` to tighten or loosen one metric.

use serde::Value;

/// One benchmark measurement parsed from a `BENCH_JSON` line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`"distill_push_record"`, ...).
    pub name: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns_per_iter: f64,
    /// Optional per-metric tolerance ratio override (baseline only).
    pub tolerance_ratio: Option<f64>,
}

/// Parse criterion-shim JSONL. Repeated names keep the last line
/// (re-runs append); the result is sorted by name.
pub fn parse_bench_jsonl(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out: Vec<BenchRecord> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("bench line {}: {e}", i + 1))?;
        let obj = v
            .as_object()
            .ok_or_else(|| format!("bench line {}: expected object", i + 1))?;
        let name = match Value::field(obj, "name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("bench line {}: missing \"name\"", i + 1)),
        };
        let median = Value::field(obj, "median_ns_per_iter")
            .and_then(as_f64)
            .ok_or_else(|| format!("bench line {}: missing \"median_ns_per_iter\"", i + 1))?;
        let tolerance_ratio = Value::field(obj, "tolerance_ratio").and_then(as_f64);
        match out.iter_mut().find(|r| r.name == name) {
            Some(existing) => {
                existing.median_ns_per_iter = median;
                existing.tolerance_ratio = tolerance_ratio;
            }
            None => out.push(BenchRecord {
                name,
                median_ns_per_iter: median,
                tolerance_ratio,
            }),
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Num(serde::Num::F(f)) => Some(*f),
        Value::Num(serde::Num::I(i)) => Some(*i as f64),
        Value::Num(serde::Num::U(u)) => Some(*u as f64),
        _ => None,
    }
}

/// Knobs for [`BenchDiff::compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchDiffConfig {
    /// Allowed `current / baseline` ratio before a metric regresses
    /// (and below whose inverse it counts as improved).
    pub default_tolerance_ratio: f64,
    /// Metrics where both sides are under this many ns are noise and
    /// always pass.
    pub noise_floor_ns: f64,
}

impl Default for BenchDiffConfig {
    fn default() -> Self {
        BenchDiffConfig {
            default_tolerance_ratio: 3.0,
            noise_floor_ns: 500.0,
        }
    }
}

/// Verdict for one benchmark metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchStatus {
    /// Within the tolerance band.
    Ok,
    /// Faster than the inverse tolerance — worth a look, not a failure.
    Improved,
    /// Slower than the tolerance band allows.
    Regressed,
    /// Present only in the current run.
    New,
    /// Present only in the baseline (a benchmark disappeared).
    Missing,
}

impl BenchStatus {
    /// Lowercase label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BenchStatus::Ok => "ok",
            BenchStatus::Improved => "improved",
            BenchStatus::Regressed => "regressed",
            BenchStatus::New => "new",
            BenchStatus::Missing => "missing",
        }
    }
}

/// One per-metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchVerdict {
    /// Benchmark name.
    pub name: String,
    /// Baseline median ns/iter, if the baseline has this metric.
    pub baseline_ns: Option<f64>,
    /// Current median ns/iter, if the current run has this metric.
    pub current_ns: Option<f64>,
    /// `current / baseline` when both are present.
    pub ratio: Option<f64>,
    /// Tolerance ratio applied to this metric.
    pub tolerance_ratio: f64,
    /// The verdict.
    pub status: BenchStatus,
}

/// A full baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Per-metric verdicts, sorted by name.
    pub verdicts: Vec<BenchVerdict>,
}

impl BenchDiff {
    /// Compare `current` against `baseline` (both as returned by
    /// [`parse_bench_jsonl`]).
    pub fn compare(
        baseline: &[BenchRecord],
        current: &[BenchRecord],
        cfg: &BenchDiffConfig,
    ) -> BenchDiff {
        let mut names: Vec<&str> = baseline
            .iter()
            .chain(current.iter())
            .map(|r| r.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        let verdicts = names
            .into_iter()
            .map(|name| {
                let b = baseline.iter().find(|r| r.name == name);
                let c = current.iter().find(|r| r.name == name);
                let tolerance_ratio = b
                    .and_then(|r| r.tolerance_ratio)
                    .unwrap_or(cfg.default_tolerance_ratio)
                    .max(1.0);
                let (status, ratio) = match (b, c) {
                    (Some(b), Some(c)) => {
                        let (bn, cn) = (b.median_ns_per_iter, c.median_ns_per_iter);
                        if bn <= cfg.noise_floor_ns && cn <= cfg.noise_floor_ns {
                            (BenchStatus::Ok, ratio_of(bn, cn))
                        } else {
                            let ratio = ratio_of(bn, cn);
                            let status = match ratio {
                                Some(r) if r > tolerance_ratio => BenchStatus::Regressed,
                                Some(r) if r < 1.0 / tolerance_ratio => BenchStatus::Improved,
                                _ => BenchStatus::Ok,
                            };
                            (status, ratio)
                        }
                    }
                    (Some(_), None) => (BenchStatus::Missing, None),
                    (None, Some(_)) => (BenchStatus::New, None),
                    (None, None) => (BenchStatus::Ok, None),
                };
                BenchVerdict {
                    name: name.to_string(),
                    baseline_ns: b.map(|r| r.median_ns_per_iter),
                    current_ns: c.map(|r| r.median_ns_per_iter),
                    ratio,
                    tolerance_ratio,
                    status,
                }
            })
            .collect();
        BenchDiff { verdicts }
    }

    /// True when nothing regressed or went missing. New and improved
    /// metrics pass.
    pub fn pass(&self) -> bool {
        !self
            .verdicts
            .iter()
            .any(|v| matches!(v.status, BenchStatus::Regressed | BenchStatus::Missing))
    }

    /// Verdicts that fail the gate.
    pub fn failures(&self) -> impl Iterator<Item = &BenchVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.status, BenchStatus::Regressed | BenchStatus::Missing))
    }

    /// Machine-readable report with a fixed field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":1,\"pass\":");
        out.push_str(if self.pass() { "true" } else { "false" });
        out.push_str(",\"verdicts\":[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  {{\"name\":\"{}\"", v.name));
            if let Some(b) = v.baseline_ns {
                out.push_str(&format!(",\"baseline_ns\":{b:.1}"));
            }
            if let Some(c) = v.current_ns {
                out.push_str(&format!(",\"current_ns\":{c:.1}"));
            }
            if let Some(r) = v.ratio {
                out.push_str(&format!(",\"ratio\":{r:.4}"));
            }
            out.push_str(&format!(
                ",\"tolerance_ratio\":{:.2},\"status\":\"{}\"}}",
                v.tolerance_ratio,
                v.status.label()
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>12} {:>12} {:>8} {:>6}  status\n",
            "benchmark", "baseline", "current", "ratio", "tol"
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<32} {:>12} {:>12} {:>8} {:>6.2}  {}\n",
                v.name,
                fmt_ns(v.baseline_ns),
                fmt_ns(v.current_ns),
                v.ratio.map_or("-".to_string(), |r| format!("{r:.3}")),
                v.tolerance_ratio,
                v.status.label()
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// An overhead gate between two benchmarks **within the same run**:
/// the `variant` benchmark (e.g. `fleet/fleet_10k_telemetry`) must
/// stay within `max_ratio` of the `base` benchmark (e.g.
/// `fleet/fleet_10k`). Because both medians come from the same
/// machine and the same run, the comparison is immune to the
/// cross-run noise that forces [`BenchDiffConfig`]'s wide default
/// band — a 1.05 ratio is meaningful here.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadGate {
    /// Reference benchmark name.
    pub base: String,
    /// Benchmark whose overhead over `base` is gated.
    pub variant: String,
    /// Maximum allowed `variant / base` median ratio.
    pub max_ratio: f64,
}

impl OverheadGate {
    /// Parse the CLI form `BASE=VARIANT:RATIO`
    /// (`fleet/fleet_10k=fleet/fleet_10k_telemetry:1.05`).
    pub fn parse(spec: &str) -> Result<OverheadGate, String> {
        let err = || format!("overhead spec {spec:?}: expected BASE=VARIANT:RATIO");
        let (base, rest) = spec.split_once('=').ok_or_else(err)?;
        let (variant, ratio) = rest.rsplit_once(':').ok_or_else(err)?;
        let max_ratio: f64 = ratio
            .parse()
            .map_err(|_| format!("overhead spec {spec:?}: bad ratio {ratio:?}"))?;
        if base.is_empty() || variant.is_empty() || max_ratio.is_nan() || max_ratio < 1.0 {
            return Err(err());
        }
        Ok(OverheadGate {
            base: base.to_string(),
            variant: variant.to_string(),
            max_ratio,
        })
    }

    /// Check the gate against one run's records. Ok returns the
    /// measured `variant / base` ratio; Err explains the violation
    /// (including either benchmark being absent — the gate never
    /// passes vacuously).
    pub fn check(&self, current: &[BenchRecord]) -> Result<f64, String> {
        let find = |name: &str| {
            current
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.median_ns_per_iter)
                .ok_or_else(|| format!("overhead gate: benchmark {name:?} not in current run"))
        };
        let base = find(&self.base)?;
        let variant = find(&self.variant)?;
        if base <= 0.0 {
            return Err(format!(
                "overhead gate: base {:?} has non-positive median {base}",
                self.base
            ));
        }
        let ratio = variant / base;
        if ratio > self.max_ratio {
            return Err(format!(
                "overhead gate: {} is {:.3}× {} (max {:.3}×)",
                self.variant, ratio, self.base, self.max_ratio
            ));
        }
        Ok(ratio)
    }
}

fn ratio_of(baseline_ns: f64, current_ns: f64) -> Option<f64> {
    if baseline_ns > 0.0 {
        Some(current_ns / baseline_ns)
    } else {
        None
    }
}

fn fmt_ns(v: Option<f64>) -> String {
    match v {
        Some(ns) if ns >= 1e6 => format!("{:.2} ms", ns / 1e6),
        Some(ns) if ns >= 1e3 => format!("{:.2} µs", ns / 1e3),
        Some(ns) => format!("{ns:.0} ns"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            median_ns_per_iter: ns,
            tolerance_ratio: None,
        }
    }

    #[test]
    fn parse_keeps_last_and_sorts() {
        let text = "\
{\"name\":\"b\",\"median_ns_per_iter\":10.0}
{\"name\":\"a\",\"median_ns_per_iter\":5.5,\"throughput_per_sec\":100.0}

{\"name\":\"b\",\"median_ns_per_iter\":20.0,\"tolerance_ratio\":2.0}
";
        let recs = parse_bench_jsonl(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[1].median_ns_per_iter, 20.0);
        assert_eq!(recs[1].tolerance_ratio, Some(2.0));
        assert!(parse_bench_jsonl("not json").is_err());
        assert!(parse_bench_jsonl("{\"name\":\"x\"}").is_err());
    }

    #[test]
    fn verdicts_cover_all_statuses() {
        let baseline = vec![
            rec("fast_enough", 1000.0),
            rec("regressed", 1000.0),
            rec("improved", 100_000.0),
            rec("missing", 1000.0),
            rec("noise", 50.0),
        ];
        let mut current = vec![
            rec("fast_enough", 2000.0),
            rec("regressed", 5000.0),
            rec("improved", 10_000.0),
            rec("noise", 400.0), // 8× but under the noise floor
            rec("new_bench", 700.0),
        ];
        current.sort_by(|a, b| a.name.cmp(&b.name));
        let diff = BenchDiff::compare(&baseline, &current, &BenchDiffConfig::default());
        let status = |n: &str| {
            diff.verdicts
                .iter()
                .find(|v| v.name == n)
                .map(|v| v.status)
                .unwrap()
        };
        assert_eq!(status("fast_enough"), BenchStatus::Ok);
        assert_eq!(status("regressed"), BenchStatus::Regressed);
        assert_eq!(status("improved"), BenchStatus::Improved);
        assert_eq!(status("missing"), BenchStatus::Missing);
        assert_eq!(status("new_bench"), BenchStatus::New);
        assert_eq!(status("noise"), BenchStatus::Ok);
        assert!(!diff.pass());
        assert_eq!(diff.failures().count(), 2);
    }

    #[test]
    fn per_metric_tolerance_overrides_default() {
        let baseline = vec![BenchRecord {
            name: "tight".to_string(),
            median_ns_per_iter: 1000.0,
            tolerance_ratio: Some(1.2),
        }];
        let current = vec![rec("tight", 1500.0)]; // 1.5× > 1.2
        let diff = BenchDiff::compare(&baseline, &current, &BenchDiffConfig::default());
        assert_eq!(diff.verdicts[0].status, BenchStatus::Regressed);
        assert_eq!(diff.verdicts[0].tolerance_ratio, 1.2);
    }

    #[test]
    fn overhead_gate_parses_and_checks() {
        let g = OverheadGate::parse("fleet/fleet_10k=fleet/fleet_10k_telemetry:1.05").unwrap();
        assert_eq!(g.base, "fleet/fleet_10k");
        assert_eq!(g.variant, "fleet/fleet_10k_telemetry");
        assert!(OverheadGate::parse("nope").is_err());
        assert!(OverheadGate::parse("a=b:0.5").is_err());
        assert!(OverheadGate::parse("a=b:x").is_err());

        let run = vec![
            rec("fleet/fleet_10k", 1_000_000.0),
            rec("fleet/fleet_10k_telemetry", 1_030_000.0),
        ];
        let ratio = g.check(&run).unwrap();
        assert!((ratio - 1.03).abs() < 1e-9);

        let slow = vec![
            rec("fleet/fleet_10k", 1_000_000.0),
            rec("fleet/fleet_10k_telemetry", 1_200_000.0),
        ];
        let err = g.check(&slow).unwrap_err();
        assert!(err.contains("1.200×"), "{err}");

        // Absent benchmarks fail rather than pass vacuously.
        assert!(g.check(&[rec("fleet/fleet_10k", 1.0)]).is_err());
        assert!(g.check(&[]).is_err());
    }

    #[test]
    fn json_report_is_stable_and_parseable() {
        let baseline = vec![rec("a", 1000.0)];
        let current = vec![rec("a", 1100.0)];
        let diff = BenchDiff::compare(&baseline, &current, &BenchDiffConfig::default());
        let json = diff.to_json();
        assert_eq!(json, diff.to_json());
        assert!(json.contains("\"pass\":true"));
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(v.as_object().is_some());
        let text = diff.render_text();
        assert!(text.contains("PASS"));
    }
}
