//! Cross-run divergence forensics: the first-divergence finder behind
//! `tracemod diff-runs`.
//!
//! Determinism CI used to gate shard/worker invariance with `cmp`,
//! whose entire diagnosis is "files differ". This module walks two
//! runs' artifacts — per-client manifest JSONL, telemetry series
//! JSONL, fault-event logs, fleet reports, flight-recorder Chrome
//! traces, alert JSONL, or any JSON/JSONL — **in lockstep** and
//! reports the *earliest differing field* with whatever context the
//! artifact carries: virtual time, client index, shard (derived from
//! `--shards` via the fleet's contiguous client ranges), and the
//! packet/event label for flight streams. "Files differ" becomes
//! "record 7213 (client 7213, shard 3, t=41.2s):
//! `fidelity.deadline_misses` 4 → 5".
//!
//! The walk is purely structural over parsed JSON values, preserving
//! object key order, so the reported path is the first difference in
//! document order — stable across reruns. Unparseable inputs fall
//! back to a line-level text diff rather than erroring out.

use serde::Value;
use std::fmt::Write as _;

/// What a pair of artifacts was recognized as (from the first record's
/// fields). Purely informational — the walk is the same for all kinds;
/// the kind picks which context fields get extracted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Telemetry `SamplePoint` JSONL (`--telemetry-out`).
    Telemetry,
    /// Per-client run-manifest JSONL (`--manifests-out`, chaos
    /// `--obs-out`).
    Manifests,
    /// Fault-event JSONL (`--fault-out`).
    Faults,
    /// Alert-report JSONL (`tracemod alerts --out`).
    Alerts,
    /// A fleet aggregate report (single JSON document).
    FleetReport,
    /// A flight-recorder Chrome trace (single JSON document with
    /// `traceEvents`).
    Flight,
    /// Some other JSON / JSONL payload.
    Json,
    /// Not JSON at all: plain text compared line by line.
    Text,
}

impl ArtifactKind {
    /// Stable lower-case label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            ArtifactKind::Telemetry => "telemetry",
            ArtifactKind::Manifests => "manifests",
            ArtifactKind::Faults => "fault-log",
            ArtifactKind::Alerts => "alerts",
            ArtifactKind::FleetReport => "fleet-report",
            ArtifactKind::Flight => "flight-trace",
            ArtifactKind::Json => "json",
            ArtifactKind::Text => "text",
        }
    }
}

/// Options steering context extraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Shard count of the runs under comparison; lets manifest
    /// divergences name the owning shard via the fleet's contiguous
    /// client ranges.
    pub shards: Option<usize>,
}

/// The earliest difference between two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// What the artifacts were recognized as.
    pub kind: ArtifactKind,
    /// Zero-based record index (JSONL line, array element, or text
    /// line) where the runs first part ways.
    pub record: usize,
    /// Field path inside the record (empty for whole-record context
    /// like a length mismatch).
    pub path: String,
    /// Side A's value at the path, rendered as JSON (or `<absent>`).
    pub a: String,
    /// Side B's value at the path, rendered as JSON (or `<absent>`).
    pub b: String,
    /// Virtual time of the diverging record, when it carries one.
    pub t_ns: Option<u64>,
    /// Client index, when the record carries one (manifest `trial`).
    pub client: Option<u32>,
    /// Owning shard, when derivable (`--shards` + manifest records).
    pub shard: Option<usize>,
    /// Extra label (flight event name, fault kind, alert rule).
    pub detail: Option<String>,
}

impl Divergence {
    /// One-line human rendering:
    /// `telemetry record 41 (t=41.2s): released 4 → 5`.
    pub fn render(&self) -> String {
        let mut s = format!("{} record {}", self.kind.label(), self.record);
        let mut ctx: Vec<String> = Vec::new();
        if let Some(c) = self.client {
            ctx.push(format!("client {c}"));
        }
        if let Some(sh) = self.shard {
            ctx.push(format!("shard {sh}"));
        }
        if let Some(t) = self.t_ns {
            ctx.push(format!("t={:.1}s", t as f64 / 1e9));
        }
        if let Some(d) = &self.detail {
            ctx.push(d.clone());
        }
        if !ctx.is_empty() {
            let _ = write!(s, " ({})", ctx.join(", "));
        }
        if self.path.is_empty() {
            let _ = write!(s, ": {} → {}", self.a, self.b);
        } else {
            let _ = write!(s, ": `{}` {} → {}", self.path, self.a, self.b);
        }
        s
    }
}

/// Compare two artifacts and return the earliest divergence, or `None`
/// when they are identical in content. Never errors: inputs that fail
/// to parse as JSON/JSONL degrade to a text diff.
pub fn diff_artifacts(a: &str, b: &str, opts: &DiffOptions) -> Option<Divergence> {
    match (parse_records(a), parse_records(b)) {
        (Some(ra), Some(rb)) => {
            let kind = classify(ra.first().or_else(|| rb.first()));
            diff_records(kind, &ra, &rb, opts)
        }
        _ => diff_text(a, b),
    }
}

/// Number of records (JSONL lines or 1 for a single document) an
/// artifact parses into — the "N records compared" count for the
/// identical case.
pub fn record_count(text: &str) -> usize {
    parse_records(text).map_or_else(|| text.lines().count(), |r| r.len())
}

/// Parse an artifact into a record sequence: a whole-text JSON
/// document is one record; otherwise every non-blank line must parse
/// as JSON (JSONL). Returns `None` when neither holds.
fn parse_records(text: &str) -> Option<Vec<Value>> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Some(Vec::new());
    }
    // Multi-line pretty JSON documents (fleet reports, flight traces)
    // parse whole; JSONL parses per line.
    if let Ok(v) = serde_json::from_str::<Value>(trimmed) {
        return Some(vec![v]);
    }
    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        records.push(serde_json::from_str::<Value>(line).ok()?);
    }
    Some(records)
}

/// Recognize the artifact family from a record's fields.
fn classify(first: Option<&Value>) -> ArtifactKind {
    let Some(Value::Object(entries)) = first else {
        return ArtifactKind::Json;
    };
    let has = |k: &str| Value::field(entries, k).is_some();
    if has("traceEvents") {
        ArtifactKind::Flight
    } else if has("t_ns") && has("events") {
        ArtifactKind::Telemetry
    } else if has("t_virtual_ns") && has("fault") {
        ArtifactKind::Faults
    } else if has("rule") && has("suppressed") {
        ArtifactKind::Alerts
    } else if has("trial") && has("fidelity") {
        ArtifactKind::Manifests
    } else if has("deadline_miss_rate") && has("clients") {
        ArtifactKind::FleetReport
    } else {
        ArtifactKind::Json
    }
}

/// Lockstep walk over parsed record sequences.
fn diff_records(
    kind: ArtifactKind,
    a: &[Value],
    b: &[Value],
    opts: &DiffOptions,
) -> Option<Divergence> {
    for (i, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        if let Some((path, va, vb)) = first_divergence(ra, rb) {
            let mut d = Divergence {
                kind,
                record: i,
                path,
                a: va,
                b: vb,
                t_ns: None,
                client: None,
                shard: None,
                detail: None,
            };
            enrich(&mut d, ra, rb, a.len().max(b.len()), opts);
            return Some(d);
        }
    }
    if a.len() != b.len() {
        return Some(Divergence {
            kind,
            record: a.len().min(b.len()),
            path: String::new(),
            a: format!("{} records", a.len()),
            b: format!("{} records", b.len()),
            t_ns: None,
            client: None,
            shard: None,
            detail: Some("record counts differ".into()),
        });
    }
    None
}

/// Pull virtual-time / client / shard / label context out of the
/// diverging record (side A, falling back to B for fields only it has).
fn enrich(d: &mut Divergence, ra: &Value, rb: &Value, total_records: usize, opts: &DiffOptions) {
    let get = |name: &str| -> Option<&Value> {
        [ra, rb].into_iter().find_map(|r| {
            r.as_object()
                .and_then(|entries| Value::field(entries, name))
        })
    };
    let as_u64 = |v: &Value| -> Option<u64> {
        match v {
            Value::Num(serde::Num::U(n)) => Some(*n),
            Value::Num(serde::Num::I(n)) if *n >= 0 => Some(*n as u64),
            Value::Num(serde::Num::F(f)) if *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    };
    d.t_ns = get("t_ns").or_else(|| get("t_virtual_ns")).and_then(as_u64);
    if d.kind == ArtifactKind::Faults {
        if let Some(Value::Str(f)) = get("fault") {
            d.detail = Some(format!("fault {f}"));
        }
    }
    if d.kind == ArtifactKind::Alerts {
        if let Some(Value::Str(r)) = get("rule") {
            d.detail = Some(format!("rule {r}"));
        }
    }
    if d.kind == ArtifactKind::Manifests {
        d.client = get("trial").and_then(as_u64).map(|t| t as u32);
        if let (Some(client), Some(shards)) = (d.client, opts.shards) {
            d.shard = shard_of(client, total_records as u32, shards);
        }
    }
    if d.kind == ArtifactKind::Flight {
        // The diverging field names a traceEvents element; surface that
        // event's own timestamp (Chrome `ts` is microseconds) and name.
        if let Some(idx) = trace_event_index(&d.path) {
            for side in [ra, rb] {
                let ev = side
                    .as_object()
                    .and_then(|e| Value::field(e, "traceEvents"))
                    .and_then(|v| match v {
                        Value::Seq(items) => items.get(idx),
                        _ => None,
                    });
                let Some(Value::Object(ev)) = ev else {
                    continue;
                };
                if d.t_ns.is_none() {
                    d.t_ns = Value::field(ev, "ts").and_then(as_u64).map(|us| us * 1_000);
                }
                if d.detail.is_none() {
                    if let Some(Value::Str(name)) = Value::field(ev, "name") {
                        d.detail = Some(format!("event {name}"));
                    }
                }
            }
        }
    }
}

/// The shard owning `client` under the fleet's contiguous near-equal
/// ranges (mirrors `FleetPlan::shard_ranges`).
fn shard_of(client: u32, clients: u32, shards: usize) -> Option<usize> {
    if clients == 0 || shards == 0 || client >= clients {
        return None;
    }
    let shards = (shards as u32).min(clients);
    let base = clients / shards;
    let rem = clients % shards;
    let mut lo = 0u32;
    for s in 0..shards {
        let hi = lo + base + u32::from(s < rem);
        if client < hi {
            return Some(s as usize);
        }
        lo = hi;
    }
    None
}

/// Extract `N` from a path starting `traceEvents[N]`.
fn trace_event_index(path: &str) -> Option<usize> {
    let rest = path.strip_prefix("traceEvents[")?;
    let end = rest.find(']')?;
    rest[..end].parse().ok()
}

/// The first differing field between two JSON values, in document
/// order: `(path, rendered_a, rendered_b)`, or `None` when equal.
/// Object keys walk in side A's order, then B-only keys; arrays walk
/// index by index with a length sentinel.
pub fn first_divergence(a: &Value, b: &Value) -> Option<(String, String, String)> {
    let mut path = String::new();
    walk(a, b, &mut path)
}

/// Render a JSON value compactly for divergence output.
fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unserializable>".into())
}

fn push_key(path: &mut String, key: &str) {
    if !path.is_empty() {
        path.push('.');
    }
    path.push_str(key);
}

fn walk(a: &Value, b: &Value, path: &mut String) -> Option<(String, String, String)> {
    match (a, b) {
        (Value::Object(ea), Value::Object(eb)) => {
            for (k, va) in ea {
                let saved = path.len();
                push_key(path, k);
                let hit = match Value::field(eb, k) {
                    Some(vb) => walk(va, vb, path),
                    None => Some((path.clone(), render(va), "<absent>".into())),
                };
                if hit.is_some() {
                    return hit;
                }
                path.truncate(saved);
            }
            for (k, vb) in eb {
                if Value::field(ea, k).is_none() {
                    let saved = path.len();
                    push_key(path, k);
                    let hit = (path.clone(), "<absent>".into(), render(vb));
                    path.truncate(saved);
                    return Some(hit);
                }
            }
            None
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            for (i, (va, vb)) in sa.iter().zip(sb.iter()).enumerate() {
                let saved = path.len();
                let _ = write!(path, "[{i}]");
                if let Some(hit) = walk(va, vb, path) {
                    return Some(hit);
                }
                path.truncate(saved);
            }
            if sa.len() != sb.len() {
                let i = sa.len().min(sb.len());
                let saved = path.len();
                let _ = write!(path, "[{i}]");
                let hit = (
                    path.clone(),
                    sa.get(i).map(render).unwrap_or_else(|| "<absent>".into()),
                    sb.get(i).map(render).unwrap_or_else(|| "<absent>".into()),
                );
                path.truncate(saved);
                return Some(hit);
            }
            None
        }
        _ => {
            let (ra, rb) = (render(a), render(b));
            if ra == rb {
                None
            } else {
                Some((path.clone(), ra, rb))
            }
        }
    }
}

/// Line-level fallback for non-JSON inputs.
fn diff_text(a: &str, b: &str) -> Option<Divergence> {
    let (la, lb): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    for (i, (ya, yb)) in la.iter().zip(lb.iter()).enumerate() {
        if ya != yb {
            return Some(Divergence {
                kind: ArtifactKind::Text,
                record: i,
                path: String::new(),
                a: format!("{ya:?}"),
                b: format!("{yb:?}"),
                t_ns: None,
                client: None,
                shard: None,
                detail: None,
            });
        }
    }
    if la.len() != lb.len() {
        return Some(Divergence {
            kind: ArtifactKind::Text,
            record: la.len().min(lb.len()),
            path: String::new(),
            a: format!("{} lines", la.len()),
            b: format!("{} lines", lb.len()),
            t_ns: None,
            client: None,
            shard: None,
            detail: Some("line counts differ".into()),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_artifacts_have_no_divergence() {
        let tel = "{\"t_ns\":1000000000,\"events\":5}\n{\"t_ns\":2000000000,\"events\":7}\n";
        assert_eq!(diff_artifacts(tel, tel, &DiffOptions::default()), None);
        assert_eq!(record_count(tel), 2);
        assert_eq!(diff_artifacts("", "", &DiffOptions::default()), None);
    }

    #[test]
    fn telemetry_divergence_names_field_and_virtual_time() {
        let a = "{\"t_ns\":1000000000,\"events\":5,\"released\":4}\n\
                 {\"t_ns\":41200000000,\"events\":9,\"released\":4}\n";
        let b = "{\"t_ns\":1000000000,\"events\":5,\"released\":4}\n\
                 {\"t_ns\":41200000000,\"events\":9,\"released\":5}\n";
        let d = diff_artifacts(a, b, &DiffOptions::default()).unwrap();
        assert_eq!(d.kind, ArtifactKind::Telemetry);
        assert_eq!(d.record, 1);
        assert_eq!(d.path, "released");
        assert_eq!((d.a.as_str(), d.b.as_str()), ("4", "5"));
        assert_eq!(d.t_ns, Some(41_200_000_000));
        let r = d.render();
        assert!(r.contains("telemetry record 1"), "{r}");
        assert!(r.contains("t=41.2s"), "{r}");
        assert!(r.contains("`released` 4 → 5"), "{r}");
    }

    #[test]
    fn manifest_divergence_names_client_and_shard() {
        // 10 clients; rows are manifests keyed by trial. Client 7 under
        // 3 shards of (4,3,3) lives on shard 2.
        let row = |trial: u32, misses: u64| {
            format!("{{\"trial\":{trial},\"fidelity\":{{\"deadline_misses\":{misses}}}}}")
        };
        let a: String = (0..10).map(|i| row(i, 4) + "\n").collect();
        let mut b_rows: Vec<String> = (0..10).map(|i| row(i, 4)).collect();
        b_rows[7] = row(7, 5);
        let b = b_rows.join("\n") + "\n";
        let d = diff_artifacts(&a, &b, &DiffOptions { shards: Some(3) }).unwrap();
        assert_eq!(d.kind, ArtifactKind::Manifests);
        assert_eq!(d.record, 7);
        assert_eq!(d.path, "fidelity.deadline_misses");
        assert_eq!(d.client, Some(7));
        assert_eq!(d.shard, Some(2));
        assert!(d.render().contains("client 7, shard 2"), "{}", d.render());
    }

    #[test]
    fn record_count_mismatch_is_a_divergence() {
        let a = "{\"t_ns\":1,\"events\":1}\n";
        let b = "{\"t_ns\":1,\"events\":1}\n{\"t_ns\":2,\"events\":1}\n";
        let d = diff_artifacts(a, b, &DiffOptions::default()).unwrap();
        assert_eq!(d.record, 1);
        assert_eq!(d.a, "1 records");
        assert_eq!(d.b, "2 records");
    }

    #[test]
    fn object_key_asymmetries_are_reported() {
        let d = first_divergence(
            &serde_json::from_str("{\"x\":1,\"y\":2}").unwrap(),
            &serde_json::from_str("{\"x\":1}").unwrap(),
        )
        .unwrap();
        assert_eq!(d, ("y".into(), "2".into(), "<absent>".into()));
        let d = first_divergence(
            &serde_json::from_str("{\"x\":1}").unwrap(),
            &serde_json::from_str("{\"x\":1,\"z\":3}").unwrap(),
        )
        .unwrap();
        assert_eq!(d, ("z".into(), "<absent>".into(), "3".into()));
    }

    #[test]
    fn flight_trace_divergence_carries_event_context() {
        let a = r#"{"traceEvents":[{"name":"modulate","ts":41200000,"args":{"packet":7213}},{"name":"release","ts":41300000,"args":{"packet":7213}}]}"#;
        let b = r#"{"traceEvents":[{"name":"modulate","ts":41200000,"args":{"packet":7213}},{"name":"release","ts":41350000,"args":{"packet":7213}}]}"#;
        let d = diff_artifacts(a, b, &DiffOptions::default()).unwrap();
        assert_eq!(d.kind, ArtifactKind::Flight);
        assert_eq!(d.path, "traceEvents[1].ts");
        assert_eq!(d.t_ns, Some(41_300_000_000));
        assert_eq!(d.detail.as_deref(), Some("event release"));
    }

    #[test]
    fn fault_log_divergence_names_the_fault() {
        let a = "{\"t_virtual_ns\":12000000000,\"fault\":\"kill_worker\",\"info\":\"shard 1\"}\n";
        let b = "{\"t_virtual_ns\":12000000000,\"fault\":\"kill_worker\",\"info\":\"shard 2\"}\n";
        let d = diff_artifacts(a, b, &DiffOptions::default()).unwrap();
        assert_eq!(d.kind, ArtifactKind::Faults);
        assert_eq!(d.path, "info");
        assert_eq!(d.t_ns, Some(12_000_000_000));
        assert_eq!(d.detail.as_deref(), Some("fault kill_worker"));
    }

    #[test]
    fn non_json_falls_back_to_text_diff() {
        let d = diff_artifacts("alpha\nbeta\n", "alpha\ngamma\n", &DiffOptions::default()).unwrap();
        assert_eq!(d.kind, ArtifactKind::Text);
        assert_eq!(d.record, 1);
        assert!(d.a.contains("beta") && d.b.contains("gamma"));
        let d = diff_artifacts("alpha\n", "alpha\nbeta\n", &DiffOptions::default()).unwrap();
        assert_eq!(d.detail.as_deref(), Some("line counts differ"));
        assert_eq!(
            diff_artifacts("same\n", "same\n", &DiffOptions::default()),
            None
        );
    }

    #[test]
    fn nested_array_length_mismatch_points_at_first_extra() {
        let a: Value = serde_json::from_str("{\"xs\":[1,2]}").unwrap();
        let b: Value = serde_json::from_str("{\"xs\":[1,2,3]}").unwrap();
        let (path, va, vb) = first_divergence(&a, &b).unwrap();
        assert_eq!(path, "xs[2]");
        assert_eq!((va.as_str(), vb.as_str()), ("<absent>", "3"));
    }

    #[test]
    fn shard_attribution_matches_fleet_ranges() {
        // 10 clients / 3 shards → (0..4)(4..7)(7..10).
        assert_eq!(shard_of(0, 10, 3), Some(0));
        assert_eq!(shard_of(3, 10, 3), Some(0));
        assert_eq!(shard_of(4, 10, 3), Some(1));
        assert_eq!(shard_of(7, 10, 3), Some(2));
        assert_eq!(shard_of(9, 10, 3), Some(2));
        assert_eq!(shard_of(10, 10, 3), None);
        // More shards than clients degrades like the fleet does.
        assert_eq!(shard_of(1, 2, 8), Some(1));
    }
}
