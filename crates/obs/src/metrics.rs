//! Scalar and distribution metrics.
//!
//! [`Counter`] and [`Gauge`] are atomic and may be shared across
//! runner threads; [`Hist`] is single-owner and meant for per-cell
//! (deterministic, virtual-time-keyed) measurement.

use netsim::stats::{Histogram, Summary};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic floating-point gauge that also tracks its peak.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    peak_bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            peak_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Set the current value (and raise the peak if exceeded).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        let mut peak = self.peak_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(peak) {
            match self.peak_bits.compare_exchange_weak(
                peak,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => peak = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Largest value ever set (0 if never set).
    pub fn peak(&self) -> f64 {
        let p = f64::from_bits(self.peak_bits.load(Ordering::Relaxed));
        if p.is_finite() {
            p
        } else {
            0.0
        }
    }
}

/// A fixed-bucket histogram with exact percentiles.
///
/// Composition, not duplication: bucketing comes from
/// [`netsim::stats::Histogram`]; mean/stddev/extrema/percentiles come
/// from a sample-retaining [`netsim::stats::Summary`].
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: Histogram,
    summary: Summary,
}

impl Hist {
    /// A histogram with `bins` equal-width bins across `[lo, hi)`
    /// (out-of-range observations clamp into the edge bins).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Hist {
            buckets: Histogram::new(lo, hi, bins),
            summary: Summary::keeping_samples(),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.buckets.add(x);
        self.summary.add(x);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// The underlying streaming summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The underlying bucket histogram.
    pub fn buckets(&self) -> &Histogram {
        &self.buckets
    }

    /// A serializable snapshot of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.summary.count(),
            mean: self.summary.mean(),
            stddev: self.summary.stddev(),
            min: self.summary.min(),
            max: self.summary.max(),
            p50: self.summary.p50(),
            p95: self.summary.p95(),
            p99: self.summary.p99(),
            bins: self.buckets.bins().to_vec(),
        }
    }
}

/// Serializable summary of a [`Hist`]: streaming moments, exact
/// percentiles, and raw bin counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Raw bin counts.
    pub bins: Vec<u64>,
}

impl HistSnapshot {
    /// A snapshot of an empty distribution (no bins).
    pub fn empty() -> Self {
        HistSnapshot {
            count: 0,
            mean: 0.0,
            stddev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            bins: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.peak(), 0.0);
        g.set(3.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.peak(), 3.5);
    }

    #[test]
    fn hist_reuses_summary_percentiles() {
        let mut h = Hist::new(0.0, 100.0, 10);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        // Snapshot percentiles are exactly the Summary's, not a
        // bucket approximation.
        assert_eq!(s.p99.to_bits(), h.summary().p99().to_bits());
        assert_eq!(s.bins.iter().sum::<u64>(), 100);
    }

    #[test]
    fn hist_snapshot_roundtrips_through_json() {
        let mut h = Hist::new(-5.0, 5.0, 4);
        h.observe(-1.0);
        h.observe(2.5);
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
