//! Append-only JSON-lines event sink, plus the poison-tolerant
//! [`SharedSink`] handle for multi-worker runs.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One observability event: a named measurement at a virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time of the measurement, in nanoseconds.
    pub t_virtual_ns: u64,
    /// Pipeline stage (`"netsim"`, `"wavelan"`, `"distill"`,
    /// `"modulate"`, `"runner"`).
    pub stage: String,
    /// Metric name within the stage.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Writes [`Event`]s as one JSON object per line — the streaming
/// complement to the end-of-run [`crate::RunManifest`] snapshot.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    events: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink writing to `w`.
    pub fn to_writer(w: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Box::new(w),
            events: 0,
        }
    }

    /// A sink appending to the file at `path` (created if missing).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink::to_writer(io::BufWriter::new(f)))
    }

    /// Append one event as a JSON line. The line (terminator included)
    /// goes down in a single `write_all`, so a panic unwinding through
    /// a shared sink cannot leave a torn line behind.
    pub fn emit(&mut self, ev: &Event) -> io::Result<()> {
        let mut line = serde_json::to_string(ev)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.out.write_all(line.as_bytes())?;
        self.events += 1;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// A cloneable, thread-safe handle over one [`JsonlSink`], for runs
/// where several workers stream into a single JSONL artifact.
///
/// **Poison tolerance.** A worker that panics while holding the sink
/// lock poisons the mutex; with the stock `.lock().unwrap()` idiom
/// every subsequent emitter would then panic too, cascading one
/// worker's failure into total observability loss. `SharedSink`
/// recovers the guard from the poison instead
/// ([`PoisonError::into_inner`]): the sink's state is a line counter
/// and a writer whose lines are appended atomically
/// ([`JsonlSink::emit`] writes each line in one `write_all`), so the
/// recovered state is always consistent and the survivors keep
/// logging.
#[derive(Debug, Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<JsonlSink>>,
}

impl SharedSink {
    /// Wrap a sink for shared use.
    pub fn new(sink: JsonlSink) -> Self {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// A shared sink appending to the file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(SharedSink::new(JsonlSink::to_file(path)?))
    }

    /// Lock the sink, recovering from a poisoned mutex rather than
    /// propagating the panic.
    fn lock(&self) -> MutexGuard<'_, JsonlSink> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one event (serialized line written atomically).
    pub fn emit(&self, ev: &Event) -> io::Result<()> {
        self.lock().emit(ev)
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.lock().flush()
    }

    /// Events emitted so far, across all handles.
    pub fn events(&self) -> u64 {
        self.lock().events()
    }
}

/// Parse a JSONL byte stream back into events (skips blank lines).
pub fn parse_events(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad event line: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Shared in-memory writer for inspecting sink output
    /// (poison-tolerant, like the production paths).
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Shared {
        fn contents(&self) -> Vec<u8> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
        }
    }
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn event(i: u64) -> Event {
        Event {
            t_virtual_ns: i * 500,
            stage: "modulate".into(),
            name: "queue_depth".into(),
            value: i as f64,
        }
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let shared = Shared::default();
        let mut sink = JsonlSink::to_writer(shared.clone());
        for i in 0..3u64 {
            sink.emit(&event(i)).unwrap();
        }
        assert_eq!(sink.events(), 3);
        let text = String::from_utf8(shared.contents()).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_events(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].value, 2.0);
        assert_eq!(back[0].stage, "modulate");
    }

    #[test]
    fn shared_sink_fans_in_from_clones() {
        let shared = Shared::default();
        let sink = SharedSink::new(JsonlSink::to_writer(shared.clone()));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let s = sink.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    s.emit(&event(w * 100 + i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.events(), 32);
        let text = String::from_utf8(shared.contents()).unwrap();
        // Every line is whole and parseable: no interleaved writes.
        assert_eq!(parse_events(&text).unwrap().len(), 32);
    }

    #[test]
    fn shared_sink_survives_a_poisoning_panic() {
        let shared = Shared::default();
        let sink = SharedSink::new(JsonlSink::to_writer(shared.clone()));
        sink.emit(&event(0)).unwrap();
        // A worker panics while holding the sink lock, poisoning it.
        let poisoner = sink.clone();
        let result = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker died mid-emit");
        })
        .join();
        assert!(result.is_err(), "the worker must actually panic");
        assert!(sink.inner.is_poisoned(), "the mutex must be poisoned");
        // Survivors keep logging through the poisoned lock.
        sink.emit(&event(1)).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.events(), 2);
        let text = String::from_utf8(shared.contents()).unwrap();
        let back = parse_events(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].t_virtual_ns, 500);
    }
}
