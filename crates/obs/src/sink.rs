//! Append-only JSON-lines event sink.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// One observability event: a named measurement at a virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time of the measurement, in nanoseconds.
    pub t_virtual_ns: u64,
    /// Pipeline stage (`"netsim"`, `"wavelan"`, `"distill"`,
    /// `"modulate"`, `"runner"`).
    pub stage: String,
    /// Metric name within the stage.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Writes [`Event`]s as one JSON object per line — the streaming
/// complement to the end-of-run [`crate::RunManifest`] snapshot.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    events: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink writing to `w`.
    pub fn to_writer(w: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Box::new(w),
            events: 0,
        }
    }

    /// A sink appending to the file at `path` (created if missing).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink::to_writer(io::BufWriter::new(f)))
    }

    /// Append one event as a JSON line.
    pub fn emit(&mut self, ev: &Event) -> io::Result<()> {
        let line = serde_json::to_string(ev)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.events += 1;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// Parse a JSONL byte stream back into events (skips blank lines).
pub fn parse_events(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad event line: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Shared in-memory writer for inspecting sink output.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let shared = Shared::default();
        let mut sink = JsonlSink::to_writer(shared.clone());
        for i in 0..3u64 {
            sink.emit(&Event {
                t_virtual_ns: i * 500,
                stage: "modulate".into(),
                name: "queue_depth".into(),
                value: i as f64,
            })
            .unwrap();
        }
        assert_eq!(sink.events(), 3);
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_events(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].value, 2.0);
        assert_eq!(back[0].stage, "modulate");
    }
}
