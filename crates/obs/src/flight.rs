//! Packet-lifecycle flight recorder.
//!
//! The paper debugs modulation fidelity with an in-kernel circular
//! trace buffer; this module is that idea lifted into the emulator: a
//! bounded ring of lifecycle events, all timestamped in **virtual
//! time**, that follows a packet from the moment it is observed at
//! collection through distillation and into the modulation decision
//! that its observation ultimately influenced.
//!
//! Identity works in two layers:
//!
//! * a **key** is a cheap content hash (FNV-1a over frame bytes, or a
//!   field mix for parsed records) computed independently by each
//!   stage — stages never exchange state, they just hash what they see;
//! * a [`PacketId`] is a small stable integer assigned the first time
//!   a key is [`FlightRecorder::assign`]ed (at collection for probe
//!   packets, at the modulation offer for benchmark packets). Other
//!   representations of the same packet (e.g. the parsed
//!   `PacketRecord`) are tied to the id with
//!   [`FlightRecorder::alias`].
//!
//! Events recorded *before* a key is assigned still resolve: the
//! export and journey APIs look keys up at read time, after the whole
//! run has finished assigning.
//!
//! The ring holds only **complete** records. Open spans live in a
//! bounded side table until [`FlightRecorder::end_span`] closes them,
//! so eviction can never separate a begin from its end — the
//! "never split a span pair" invariant holds by construction.
//!
//! Everything here derives from sim state only (no wall clock, no
//! ambient randomness), so exports are byte-identical across worker
//! counts.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Stable per-run packet identity, dense from 0 in assignment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Pipeline stage that produced an event; one export track each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Link-level frame transit inside a simulator.
    Netsim,
    /// WaveLAN channel: air time, rate changes, handoffs, loss.
    Wavelan,
    /// Trace collection: the packet filter observed a frame.
    Collect,
    /// Distillation: an observation fed a quality tuple.
    Distill,
    /// Modulation: the intended-vs-actual delay/loss decision.
    Modulate,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Netsim,
        Stage::Wavelan,
        Stage::Collect,
        Stage::Distill,
        Stage::Modulate,
    ];

    /// Short lowercase label (also the export `cat` field).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Netsim => "netsim",
            Stage::Wavelan => "wavelan",
            Stage::Collect => "collect",
            Stage::Distill => "distill",
            Stage::Modulate => "modulate",
        }
    }

    /// Export track (Chrome `tid`); 1-based, pipeline order.
    fn track(&self) -> u64 {
        match self {
            Stage::Netsim => 1,
            Stage::Wavelan => 2,
            Stage::Collect => 3,
            Stage::Distill => 4,
            Stage::Modulate => 5,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed lifecycle event. `begin_ns == end_ns` is an instant;
/// anything longer is a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone sequence number assigned when the record entered the
    /// ring; the ring always holds a contiguous seq range.
    pub seq: u64,
    /// Stage that produced the event.
    pub stage: Stage,
    /// Event name (`"transit"`, `"air"`, `"release"`, ...).
    pub name: &'static str,
    /// Content key of the packet this event is about, if known.
    pub key: Option<u64>,
    /// Distilled-tuple index this event is tied to, if any.
    pub tuple: Option<u64>,
    /// Virtual-time start, ns.
    pub begin_ns: u64,
    /// Virtual-time end, ns (== `begin_ns` for instants).
    pub end_ns: u64,
    /// Free-form human detail (deterministic — derived from sim state).
    pub detail: String,
}

impl FlightRecord {
    /// True when the record covers a non-zero time span.
    pub fn is_span(&self) -> bool {
        self.end_ns > self.begin_ns
    }

    /// Span duration in ns (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }
}

/// Opaque handle to a span opened with [`FlightRecorder::begin_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u64);

/// Partially built record parked until its end time is known.
#[derive(Debug, Clone)]
struct OpenSpan {
    stage: Stage,
    name: &'static str,
    key: Option<u64>,
    tuple: Option<u64>,
    begin_ns: u64,
    detail: String,
}

/// Bounded ring buffer of [`FlightRecord`]s plus the key → [`PacketId`]
/// registry. See the module docs for the identity model.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    records: VecDeque<FlightRecord>,
    next_seq: u64,
    evicted: u64,
    ids: BTreeMap<u64, PacketId>,
    next_id: u64,
    open: BTreeMap<u64, OpenSpan>,
    next_token: u64,
    dropped_open: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` completed records (oldest
    /// evicted first). Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            next_seq: 0,
            evicted: 0,
            ids: BTreeMap::new(),
            next_id: 0,
            open: BTreeMap::new(),
            next_token: 0,
            dropped_open: 0,
        }
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted to make room (total pushed = `len + evicted`).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total records ever pushed into the ring.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Distinct packets assigned an id so far.
    pub fn packets(&self) -> u64 {
        self.next_id
    }

    /// Open spans abandoned under side-table pressure plus end-span
    /// calls whose token was unknown.
    pub fn dropped_open(&self) -> u64 {
        self.dropped_open
    }

    /// Id for `key`, assigning the next dense id on first sight.
    pub fn assign(&mut self, key: u64) -> PacketId {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = PacketId(self.next_id);
        self.next_id += 1;
        self.ids.insert(key, id);
        id
    }

    /// Tie an additional key (another representation of the same
    /// packet) to an existing id. First binding of a key wins.
    pub fn alias(&mut self, key: u64, id: PacketId) {
        self.ids.entry(key).or_insert(id);
    }

    /// Id previously assigned to `key`, if any.
    pub fn packet_for_key(&self, key: u64) -> Option<PacketId> {
        self.ids.get(&key).copied()
    }

    fn push(&mut self, mut rec: FlightRecord) {
        rec.seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(rec);
    }

    /// Record a completed span `[begin_ns, end_ns]`.
    #[allow(clippy::too_many_arguments)] // mirrors the record's fields
    pub fn span(
        &mut self,
        stage: Stage,
        name: &'static str,
        key: Option<u64>,
        tuple: Option<u64>,
        begin_ns: u64,
        end_ns: u64,
        detail: String,
    ) {
        self.push(FlightRecord {
            seq: 0,
            stage,
            name,
            key,
            tuple,
            begin_ns,
            end_ns: end_ns.max(begin_ns),
            detail,
        });
    }

    /// Record a zero-duration event at `at_ns`.
    pub fn instant(
        &mut self,
        stage: Stage,
        name: &'static str,
        key: Option<u64>,
        tuple: Option<u64>,
        at_ns: u64,
        detail: String,
    ) {
        self.span(stage, name, key, tuple, at_ns, at_ns, detail);
    }

    /// Open a span whose end time is not yet known. The open half
    /// lives in a side table (bounded by the ring capacity; oldest
    /// open span is abandoned under pressure) and only enters the
    /// ring — as one complete record — when [`end_span`] closes it.
    ///
    /// [`end_span`]: FlightRecorder::end_span
    pub fn begin_span(
        &mut self,
        stage: Stage,
        name: &'static str,
        key: Option<u64>,
        tuple: Option<u64>,
        begin_ns: u64,
        detail: String,
    ) -> SpanToken {
        if self.open.len() >= self.capacity {
            if let Some((&oldest, _)) = self.open.iter().next() {
                self.open.remove(&oldest);
                self.dropped_open += 1;
            }
        }
        let token = self.next_token;
        self.next_token += 1;
        self.open.insert(
            token,
            OpenSpan {
                stage,
                name,
                key,
                tuple,
                begin_ns,
                detail,
            },
        );
        SpanToken(token)
    }

    /// Close an open span at `end_ns`, committing it to the ring. An
    /// unknown token (already abandoned) is counted, not an error.
    pub fn end_span(&mut self, token: SpanToken, end_ns: u64) {
        match self.open.remove(&token.0) {
            Some(o) => self.span(
                o.stage, o.name, o.key, o.tuple, o.begin_ns, end_ns, o.detail,
            ),
            None => self.dropped_open += 1,
        }
    }

    /// Retained records, oldest first (ascending `seq`).
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.records.iter()
    }

    /// Records whose span overlaps `[t0_ns, t1_ns]`, oldest first.
    pub fn window(&self, t0_ns: u64, t1_ns: u64) -> Vec<&FlightRecord> {
        self.records
            .iter()
            .filter(|r| r.begin_ns <= t1_ns && r.end_ns >= t0_ns)
            .collect()
    }

    /// Human-readable listing of [`window`](FlightRecorder::window),
    /// one timeline line per record (what `tracemod journey --window`
    /// prints).
    pub fn render_window(&self, t0_ns: u64, t1_ns: u64) -> String {
        let recs = self.window(t0_ns, t1_ns);
        let mut out = format!(
            "{} record(s) in [{} .. {}]\n",
            recs.len(),
            secs(t0_ns),
            secs(t1_ns)
        );
        for r in recs {
            out.push_str(&render_record(r));
        }
        out
    }

    /// The retained causal timeline of one packet, or `None` if no
    /// retained record resolves to `id`.
    pub fn journey(&self, id: PacketId) -> Option<PacketJourney> {
        let mut direct: Vec<FlightRecord> = self
            .records
            .iter()
            .filter(|r| r.key.and_then(|k| self.packet_for_key(k)) == Some(id))
            .cloned()
            .collect();
        if direct.is_empty() {
            return None;
        }
        direct.sort_by_key(|r| (r.begin_ns, r.seq));
        let tuples: Vec<u64> = {
            let set: BTreeSet<u64> = direct.iter().filter_map(|r| r.tuple).collect();
            set.into_iter().collect()
        };
        let mut causal: Vec<FlightRecord> = self
            .records
            .iter()
            .filter(|r| {
                r.stage == Stage::Modulate
                    && r.tuple.is_some_and(|t| tuples.contains(&t))
                    && r.key.and_then(|k| self.packet_for_key(k)) != Some(id)
            })
            .cloned()
            .collect();
        causal.sort_by_key(|r| (r.begin_ns, r.seq));
        Some(PacketJourney {
            id,
            records: direct,
            causal,
            tuples,
        })
    }

    /// The packet whose journey covers the most distinct stages
    /// (counting causally linked modulation); ties break toward the
    /// earliest-assigned id. `None` when nothing resolves.
    pub fn best_packet(&self) -> Option<PacketId> {
        let mut stages: BTreeMap<PacketId, BTreeSet<Stage>> = BTreeMap::new();
        let mut id_tuples: BTreeMap<PacketId, BTreeSet<u64>> = BTreeMap::new();
        let mut modulated_tuples: BTreeSet<u64> = BTreeSet::new();
        for r in &self.records {
            if r.stage == Stage::Modulate {
                if let Some(t) = r.tuple {
                    modulated_tuples.insert(t);
                }
            }
            if let Some(id) = r.key.and_then(|k| self.packet_for_key(k)) {
                stages.entry(id).or_default().insert(r.stage);
                if let Some(t) = r.tuple {
                    id_tuples.entry(id).or_default().insert(t);
                }
            }
        }
        stages
            .iter()
            .map(|(&id, s)| {
                let causal_mod = !s.contains(&Stage::Modulate)
                    && id_tuples
                        .get(&id)
                        .is_some_and(|ts| ts.iter().any(|t| modulated_tuples.contains(t)));
                (s.len() + usize::from(causal_mod), id)
            })
            // max_by_key returns the *last* max; invert the id so the
            // earliest id wins ties, then undo.
            .max_by_key(|&(score, id)| (score, u64::MAX - id.0))
            .map(|(_, id)| id)
    }

    /// Export the retained records as Chrome trace-event / Perfetto
    /// JSON: one track per stage, complete (`X`) events for spans,
    /// instant (`i`) events for points, and flow arrows (`s`/`t`/`f`)
    /// linking each resolved packet's events across stages.
    ///
    /// Field order is fixed and all timestamps are virtual, so the
    /// bytes are identical across worker counts.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + self.records.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",");
        out.push_str("\"otherData\":{\"generator\":\"tracemod flight-recorder\",\"schema\":1},");
        out.push_str("\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s);
        };
        emit(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"tracemod pipeline (virtual time)\"}}"
                .to_string(),
            &mut out,
        );
        for st in Stage::ALL {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    st.track(),
                    st.label()
                ),
                &mut out,
            );
        }
        for r in &self.records {
            let mut e = String::with_capacity(160);
            if r.is_span() {
                e.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                    r.stage.track(),
                    us(r.begin_ns),
                    us(r.duration_ns())
                ));
            } else {
                e.push_str(&format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\"",
                    r.stage.track(),
                    us(r.begin_ns)
                ));
            }
            e.push_str(&format!(
                ",\"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"seq\":{}",
                r.name,
                r.stage.label(),
                r.seq
            ));
            if let Some(id) = r.key.and_then(|k| self.packet_for_key(k)) {
                e.push_str(&format!(",\"packet\":{id}"));
            }
            if let Some(k) = r.key {
                e.push_str(&format!(",\"key\":\"0x{k:016x}\""));
            }
            if let Some(t) = r.tuple {
                e.push_str(&format!(",\"tuple\":{t}"));
            }
            if !r.detail.is_empty() {
                e.push_str(",\"detail\":\"");
                esc(&r.detail, &mut e);
                e.push('"');
            }
            e.push_str("}}");
            emit(e, &mut out);
        }
        // Flow arrows: one chain per packet with ≥ 2 resolved records.
        let mut chains: BTreeMap<PacketId, Vec<&FlightRecord>> = BTreeMap::new();
        for r in &self.records {
            if let Some(id) = r.key.and_then(|k| self.packet_for_key(k)) {
                chains.entry(id).or_default().push(r);
            }
        }
        for (id, mut recs) in chains {
            if recs.len() < 2 {
                continue;
            }
            recs.sort_by_key(|r| (r.begin_ns, r.seq));
            let last = recs.len() - 1;
            for (i, r) in recs.iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
                emit(
                    format!(
                        "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{}{},\
                         \"name\":\"packet\",\"cat\":\"flow\"}}",
                        ph,
                        r.stage.track(),
                        us(r.begin_ns),
                        id.0,
                        bp
                    ),
                    &mut out,
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Microseconds with exact sub-µs precision, as a JSON number literal.
fn us(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Minimal JSON string escaping (details are ASCII we generate).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Seconds with µs precision for human-readable timelines.
fn secs(ns: u64) -> String {
    format!(
        "{}.{:06}s",
        ns / 1_000_000_000,
        (ns % 1_000_000_000) / 1_000
    )
}

/// One packet's retained causal timeline: its own events plus the
/// modulation decisions made under tuples its observation fed.
#[derive(Debug, Clone)]
pub struct PacketJourney {
    /// The packet.
    pub id: PacketId,
    /// Events that resolve to this packet, timeline order.
    pub records: Vec<FlightRecord>,
    /// Modulation events on other packets under this packet's tuples.
    pub causal: Vec<FlightRecord>,
    /// Distilled-tuple indices this packet's observation fed.
    pub tuples: Vec<u64>,
}

impl PacketJourney {
    /// Distinct stages covered, counting causally linked modulation.
    pub fn stages(&self) -> Vec<Stage> {
        let mut set: BTreeSet<Stage> = self.records.iter().map(|r| r.stage).collect();
        if !self.causal.is_empty() {
            set.insert(Stage::Modulate);
        }
        set.into_iter().collect()
    }

    /// Total span time per stage over the packet's own events, in
    /// pipeline-stage order (stages with no spans omitted).
    pub fn stage_latency_ns(&self) -> Vec<(Stage, u64)> {
        let mut sums: BTreeMap<Stage, u64> = BTreeMap::new();
        for r in &self.records {
            if r.is_span() {
                *sums.entry(r.stage).or_insert(0) += r.duration_ns();
            }
        }
        Stage::ALL
            .iter()
            .filter_map(|s| sums.get(s).map(|&v| (*s, v)))
            .collect()
    }

    /// Human-readable timeline with per-stage latency breakdown.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let stages = self.stages();
        out.push_str(&format!(
            "packet {}: {} event(s) across {} stage(s)",
            self.id,
            self.records.len(),
            stages.len()
        ));
        if !self.tuples.is_empty() {
            let ts: Vec<String> = self.tuples.iter().map(|t| t.to_string()).collect();
            out.push_str(&format!(", fed tuple(s) {}", ts.join(", ")));
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&render_record(r));
        }
        let lat = self.stage_latency_ns();
        if !lat.is_empty() {
            out.push_str("per-stage latency:\n");
            for (s, ns) in lat {
                out.push_str(&format!(
                    "  {:<8} {:>10.3} ms\n",
                    s.label(),
                    ns as f64 / 1e6
                ));
            }
        }
        if !self.causal.is_empty() {
            out.push_str(&format!(
                "modulation decisions under this packet's tuple(s) ({} shown):\n",
                self.causal.len()
            ));
            for r in &self.causal {
                out.push_str(&render_record(r));
            }
        }
        out
    }
}

/// One timeline line: `[stage] begin (+dur) name detail`.
fn render_record(r: &FlightRecord) -> String {
    let dur = if r.is_span() {
        format!(" (+{:.3} ms)", r.duration_ns() as f64 / 1e6)
    } else {
        String::new()
    };
    let tuple = match r.tuple {
        Some(t) => format!(" tuple={t}"),
        None => String::new(),
    };
    format!(
        "  [{:<8}] {:>14} {:<12}{}{}  {}\n",
        r.stage.label(),
        secs(r.begin_ns),
        r.name,
        dur,
        tuple,
        r.detail
    )
}

/// FNV-1a over raw frame bytes: the content key every stage can
/// compute independently from the bytes it holds.
pub fn frame_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a sequence of u64 parts (little-endian), for keys built
/// from parsed fields rather than raw bytes.
pub fn mix_key(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Cloneable, shareable handle to a [`FlightRecorder`]. Locking is
/// poison-proof: a panicking holder cannot wedge later observers.
#[derive(Debug, Clone)]
pub struct FlightHandle {
    inner: Arc<Mutex<FlightRecorder>>,
}

impl FlightHandle {
    /// A fresh recorder behind a shared handle.
    pub fn new(capacity: usize) -> Self {
        FlightHandle {
            inner: Arc::new(Mutex::new(FlightRecorder::new(capacity))),
        }
    }

    /// Run `f` with the recorder locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut FlightRecorder) -> R) -> R {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    /// See [`FlightRecorder::assign`].
    pub fn assign(&self, key: u64) -> PacketId {
        self.with(|r| r.assign(key))
    }

    /// See [`FlightRecorder::alias`].
    pub fn alias(&self, key: u64, id: PacketId) {
        self.with(|r| r.alias(key, id))
    }

    /// See [`FlightRecorder::span`].
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        stage: Stage,
        name: &'static str,
        key: Option<u64>,
        tuple: Option<u64>,
        begin_ns: u64,
        end_ns: u64,
        detail: String,
    ) {
        self.with(|r| r.span(stage, name, key, tuple, begin_ns, end_ns, detail));
    }

    /// See [`FlightRecorder::instant`].
    pub fn instant(
        &self,
        stage: Stage,
        name: &'static str,
        key: Option<u64>,
        tuple: Option<u64>,
        at_ns: u64,
        detail: String,
    ) {
        self.with(|r| r.instant(stage, name, key, tuple, at_ns, detail));
    }

    /// See [`FlightRecorder::to_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        self.with(|r| r.to_chrome_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(r: &mut FlightRecorder, n: u64) {
        r.instant(
            Stage::Collect,
            "collect",
            Some(n),
            None,
            n * 10,
            format!("p{n}"),
        );
    }

    #[test]
    fn ring_evicts_oldest_first_and_keeps_seq_contiguous() {
        let mut r = FlightRecorder::new(4);
        for n in 0..10 {
            rec(&mut r, n);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.pushed(), 10);
        let seqs: Vec<u64> = r.records().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn open_spans_never_split_across_eviction() {
        let mut r = FlightRecorder::new(2);
        let t = r.begin_span(Stage::Wavelan, "air", Some(1), None, 100, String::new());
        // Flood the ring while the span is open.
        for n in 0..8 {
            rec(&mut r, 100 + n);
        }
        r.end_span(t, 250);
        // The completed span is one record; no half-spans anywhere.
        let air: Vec<&FlightRecord> = r.records().filter(|x| x.name == "air").collect();
        assert_eq!(air.len(), 1);
        assert_eq!((air[0].begin_ns, air[0].end_ns), (100, 250));
        assert_eq!(r.dropped_open(), 0);
    }

    #[test]
    fn open_table_pressure_abandons_oldest_open() {
        let mut r = FlightRecorder::new(2);
        let t0 = r.begin_span(Stage::Netsim, "a", None, None, 0, String::new());
        let t1 = r.begin_span(Stage::Netsim, "b", None, None, 1, String::new());
        let _t2 = r.begin_span(Stage::Netsim, "c", None, None, 2, String::new());
        // capacity 2: opening `c` abandoned `a`.
        assert_eq!(r.dropped_open(), 1);
        r.end_span(t0, 10); // unknown now — counted, not recorded
        assert_eq!(r.dropped_open(), 2);
        r.end_span(t1, 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r.records().next().unwrap().name, "b");
    }

    #[test]
    fn identity_assign_alias_resolve() {
        let mut r = FlightRecorder::new(8);
        let id = r.assign(0xaa);
        assert_eq!(r.assign(0xaa), id);
        r.alias(0xbb, id);
        assert_eq!(r.packet_for_key(0xbb), Some(id));
        let id2 = r.assign(0xcc);
        assert_ne!(id, id2);
        // alias never rebinds
        r.alias(0xbb, id2);
        assert_eq!(r.packet_for_key(0xbb), Some(id));
        assert_eq!(r.packets(), 2);
    }

    #[test]
    fn journey_links_stages_and_causal_modulation() {
        let mut r = FlightRecorder::new(64);
        let id = r.assign(0x1);
        r.alias(0x2, id); // parsed-record alias
        r.span(
            Stage::Netsim,
            "transit",
            Some(0x1),
            None,
            0,
            500,
            "wl".into(),
        );
        r.span(
            Stage::Wavelan,
            "air",
            Some(0x1),
            None,
            500,
            900,
            String::new(),
        );
        r.instant(
            Stage::Collect,
            "collect",
            Some(0x2),
            None,
            900,
            String::new(),
        );
        r.instant(
            Stage::Distill,
            "attribute",
            Some(0x2),
            Some(7),
            1_000,
            String::new(),
        );
        // Benchmark packet modulated under tuple 7:
        r.assign(0x9);
        r.instant(
            Stage::Modulate,
            "release",
            Some(0x9),
            Some(7),
            2_000,
            String::new(),
        );
        let j = r.journey(id).unwrap();
        assert_eq!(j.records.len(), 4);
        assert_eq!(j.tuples, vec![7]);
        assert_eq!(j.causal.len(), 1);
        assert_eq!(j.stages(), Stage::ALL.to_vec());
        assert_eq!(r.best_packet(), Some(id));
        let lat = j.stage_latency_ns();
        assert_eq!(lat, vec![(Stage::Netsim, 500), (Stage::Wavelan, 400)]);
        let text = j.render_text();
        assert!(text.contains("5 stage(s)"));
        assert!(text.contains("tuple(s) 7"));
    }

    #[test]
    fn chrome_trace_has_tracks_flows_and_fixed_shape() {
        let mut r = FlightRecorder::new(64);
        let id = r.assign(0x1);
        r.span(
            Stage::Netsim,
            "transit",
            Some(0x1),
            None,
            1_000,
            2_500,
            "wl".into(),
        );
        r.instant(
            Stage::Collect,
            "collect",
            Some(0x1),
            None,
            2_500,
            "q\"x\"".into(),
        );
        let _ = id;
        let json = r.to_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\","));
        assert!(json.contains("\"thread_name\""));
        for st in Stage::ALL {
            assert!(json.contains(&format!("\"name\":\"{}\"", st.label())));
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"s\"")); // flow start
        assert!(json.contains("\"ph\":\"f\"")); // flow finish
        assert!(json.contains("\\\"x\\\"")); // escaped detail
        assert!(!json.contains("wall"), "no wall-clock fields in export");
        // Parses as JSON under the shim.
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        assert!(serde::Value::field(obj, "traceEvents").is_some());
    }

    #[test]
    fn sub_microsecond_timestamps_are_exact() {
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(us(2_000), "2");
        assert_eq!(us(0), "0");
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(frame_key(b"abc"), frame_key(b"abc"));
        assert_ne!(frame_key(b"abc"), frame_key(b"abd"));
        assert_eq!(mix_key(&[1, 2]), mix_key(&[1, 2]));
        assert_ne!(mix_key(&[1, 2]), mix_key(&[2, 1]));
    }
}
