//! A scoped self-profiler for the fleet hot paths.
//!
//! The telemetry plane answers "what is the fleet doing"; this module
//! answers "where does the emulator's own time go" — span accumulation
//! over the netsim/modulate/distill hot paths with flamegraph-style
//! collapsed-stack output (`stack;frames count` lines, one per unique
//! stack, feedable straight into `flamegraph.pl` or speedscope).
//!
//! Spans nest: [`Profiler::enter`] pushes a frame, [`Profiler::exit`]
//! pops it and attributes the elapsed wall time to the frame's **self
//! time** (elapsed minus the time spent in child frames). Alongside
//! wall time each frame can accumulate *virtual* nanoseconds
//! ([`Profiler::add_virtual`]) so a scope can report how much simulated
//! time it advanced per wall second.
//!
//! Profiling reads the wall clock, so it is opt-in (`fleet
//! --profile-out`), carries no determinism promise, and is **excluded**
//! from all deterministic artifacts — the same rule the manifest's
//! `RunnerSection` follows. Per-shard profiles merge by summation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Accumulated totals for one unique stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfEntry {
    /// Times the span was entered.
    pub calls: u64,
    /// Wall-clock self time (ns): elapsed minus child-span time.
    pub wall_ns: u64,
    /// Virtual nanoseconds attributed to the span.
    pub virtual_ns: u64,
}

/// A scoped wall-clock profiler with collapsed-stack output. Owned
/// single-threaded by one shard; merge shard profiles with
/// [`Profiler::merge`].
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Current stack of span names.
    stack: Vec<&'static str>,
    /// Parallel to `stack`: (entry instant, accumulated child ns).
    open: Vec<(Instant, u64)>,
    /// Totals keyed by collapsed stack ("a;b;c").
    entries: BTreeMap<String, ProfEntry>,
}

impl Profiler {
    /// A profiler with no open spans.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Open a span named `name` nested under the current stack.
    pub fn enter(&mut self, name: &'static str) {
        self.stack.push(name);
        self.open.push((Instant::now(), 0));
    }

    /// Close the innermost span, attributing its self time. Panics if
    /// no span is open or `name` does not match the innermost span
    /// (enter/exit must nest).
    pub fn exit(&mut self, name: &'static str) {
        let top = self.stack.last().copied();
        assert_eq!(top, Some(name), "profiler exit out of order");
        let (start, child_ns) = self.open.pop().expect("span open");
        let elapsed = start.elapsed().as_nanos() as u64;
        let key = self.stack.join(";");
        self.stack.pop();
        let e = self.entries.entry(key).or_default();
        e.calls += 1;
        e.wall_ns += elapsed.saturating_sub(child_ns);
        if let Some((_, parent_child)) = self.open.last_mut() {
            *parent_child += elapsed;
        }
    }

    /// Attribute `ns` of simulated time to the innermost open span
    /// (no-op when no span is open).
    pub fn add_virtual(&mut self, ns: u64) {
        if self.stack.is_empty() {
            return;
        }
        let key = self.stack.join(";");
        self.entries.entry(key).or_default().virtual_ns += ns;
    }

    /// Sum another profiler's totals into this one (stack-wise).
    pub fn merge(&mut self, other: &Profiler) {
        assert!(other.stack.is_empty(), "merging a profiler with open spans");
        for (key, o) in &other.entries {
            let e = self.entries.entry(key.clone()).or_default();
            e.calls += o.calls;
            e.wall_ns += o.wall_ns;
            e.virtual_ns += o.virtual_ns;
        }
    }

    /// Totals keyed by collapsed stack, alphabetical.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &ProfEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Flamegraph collapsed-stack format: one `stack count` line per
    /// unique stack, count in microseconds of self time (flamegraph
    /// tooling expects integer sample counts; µs keeps resolution
    /// without overflow).
    pub fn render_collapsed(&self) -> String {
        let mut s = String::new();
        for (key, e) in &self.entries {
            let _ = writeln!(s, "{} {}", key, e.wall_ns / 1_000);
        }
        s
    }

    /// Human-readable table, largest self time first.
    pub fn render_text(&self) -> String {
        let mut rows: Vec<(&String, &ProfEntry)> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
        let total: u64 = rows.iter().map(|(_, e)| e.wall_ns).sum();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<40} {:>10} {:>12} {:>7} {:>12}",
            "span", "calls", "self ms", "%", "virt s"
        );
        for (key, e) in rows {
            let pct = if total > 0 {
                e.wall_ns as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "{:<40} {:>10} {:>12.3} {:>6.1}% {:>12.3}",
                key,
                e.calls,
                e.wall_ns as f64 / 1e6,
                pct,
                e.virtual_ns as f64 / 1e9
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_self_time_to_each_frame() {
        let mut p = Profiler::new();
        p.enter("run");
        p.enter("modulate");
        p.add_virtual(500);
        p.exit("modulate");
        p.exit("run");
        let map: BTreeMap<&str, ProfEntry> = p.entries().map(|(k, v)| (k, *v)).collect();
        assert_eq!(map["run"].calls, 1);
        assert_eq!(map["run;modulate"].calls, 1);
        assert_eq!(map["run;modulate"].virtual_ns, 500);
        // Parent self time excludes the child's elapsed time, so the
        // sum of self times never exceeds total elapsed by design;
        // both are non-negative by construction (u64).
        let collapsed = p.render_collapsed();
        assert!(collapsed.contains("run;modulate "));
        assert_eq!(collapsed.lines().count(), 2);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.enter("probe");
            p.exit("probe");
        }
        let (_, e) = p.entries().next().unwrap();
        assert_eq!(e.calls, 3);
    }

    #[test]
    fn merge_sums_stackwise() {
        let mut a = Profiler::new();
        a.enter("x");
        a.add_virtual(10);
        a.exit("x");
        let mut b = Profiler::new();
        b.enter("x");
        b.add_virtual(32);
        b.exit("x");
        b.enter("y");
        b.exit("y");
        a.merge(&b);
        let map: BTreeMap<&str, ProfEntry> = a.entries().map(|(k, v)| (k, *v)).collect();
        assert_eq!(map["x"].calls, 2);
        assert_eq!(map["x"].virtual_ns, 42);
        assert_eq!(map["y"].calls, 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn mismatched_exit_panics() {
        let mut p = Profiler::new();
        p.enter("a");
        p.exit("b");
    }

    #[test]
    fn text_render_sorts_by_self_time() {
        let mut p = Profiler::new();
        p.enter("fast");
        p.exit("fast");
        let txt = p.render_text();
        assert!(txt.contains("span"));
        assert!(txt.contains("fast"));
    }
}
