//! Property coverage for the telemetry export surfaces the alert and
//! diff planes consume.
//!
//! Two guarantees matter downstream:
//!
//! * **JSONL round-trip** — `tracemod alerts --telemetry F` re-reads
//!   the rows `fleet --telemetry-out` wrote; every [`SamplePoint`]
//!   field must survive serialize → parse bit-exactly, and a whole
//!   series must survive `to_jsonl` → per-line parse in order.
//! * **Prometheus exposition shape** — scrapers only tolerate the text
//!   format: every sample line needs a preceding `# HELP` + `# TYPE`
//!   pair for its metric, metric names must match the Prometheus
//!   grammar, and label values / HELP text must be escaped so
//!   adversarial keys cannot break line framing.

use obs::telemetry::{escape_help, escape_label_value, valid_metric_name};
use obs::{FleetTelemetry, SamplePoint, TopEntry, TELEMETRY_SCHEMA};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn point(seed: &[u64; 12]) -> SamplePoint {
    SamplePoint {
        t_ns: seed[0],
        events: seed[1],
        queue_depth: seed[2],
        packets_live: seed[3],
        mod_held: seed[4],
        probes_sent: seed[5],
        rtts_completed: seed[6],
        packets_lost: seed[7],
        released: seed[8],
        abs_delay_error_ns: seed[9],
        station_frames: seed[10],
        degraded_clients: seed[11],
    }
}

/// Characters adversarial to the exposition format, plus benign ones;
/// the shim has no `Arbitrary for String`, so strings are drawn as
/// palette indices.
const PALETTE: [char; 8] = ['a', 'Z', '\\', '"', '\n', ' ', '0', 'é'];

fn palette_string(ixs: &[usize]) -> String {
    ixs.iter().map(|&i| PALETTE[i]).collect()
}

fn telemetry_with(series: Vec<SamplePoint>) -> FleetTelemetry {
    FleetTelemetry {
        schema: TELEMETRY_SCHEMA,
        interval_ns: 1_000_000_000,
        evicted: 0,
        series,
        worst_clients: vec![TopEntry {
            key: 7,
            weight: 1234,
            error: 0,
        }],
        hot_stations: vec![TopEntry {
            key: 2,
            weight: 998,
            error: 0,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One row: serialize → parse is the identity on every field,
    /// including u64 values past 2^53 where a float-routed codec
    /// would round.
    #[test]
    fn sample_point_round_trips_through_json(fields in pvec(any::<u64>(), 12)) {
        let row = point(&<[u64; 12]>::try_from(fields).expect("12 fields"));
        let json = serde_json::to_string(&row).expect("row serializes");
        let back: SamplePoint = serde_json::from_str(&json).expect("row parses");
        prop_assert_eq!(row, back);
    }

    /// A whole series: `to_jsonl` emits one parseable object per row,
    /// in series order, and re-emitting the parsed rows reproduces the
    /// bytes (the determinism contract `diff-runs` leans on).
    #[test]
    fn series_round_trips_through_jsonl(rows in pvec(pvec(any::<u64>(), 12), 0..20)) {
        let series: Vec<SamplePoint> = rows
            .iter()
            .map(|f| point(&<[u64; 12]>::try_from(f.clone()).expect("12 fields")))
            .collect();
        let tel = telemetry_with(series.clone());
        let jsonl = tel.to_jsonl();
        let parsed: Vec<SamplePoint> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses"))
            .collect();
        prop_assert_eq!(&parsed, &series);
        let reemitted = telemetry_with(parsed).to_jsonl();
        prop_assert_eq!(reemitted, jsonl);
    }

    /// Label-value escaping: the escaped form contains no raw newline,
    /// no unescaped quote, and round-trips (unescape restores the
    /// original), so arbitrary keys cannot break exposition framing.
    #[test]
    fn label_value_escaping_is_invertible(ixs in pvec(0usize..8, 0..24)) {
        let v = palette_string(&ixs);
        let esc = escape_label_value(&v);
        prop_assert!(!esc.contains('\n'));
        // Every quote must be preceded by an odd run of backslashes.
        let bytes = esc.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                let back = bytes[..i].iter().rev().take_while(|&&c| c == b'\\').count();
                prop_assert!(back % 2 == 1, "unescaped quote in {esc:?}");
            }
        }
        // Invert: \\ → \, \" → ", \n → newline.
        let mut out = String::new();
        let mut it = esc.chars();
        while let Some(c) = it.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match it.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => prop_assert!(false, "dangling backslash in {esc:?}"),
            }
        }
        prop_assert_eq!(out, v);
    }

    /// HELP escaping strips raw newlines and keeps backslashes
    /// self-describing.
    #[test]
    fn help_escaping_never_breaks_lines(ixs in pvec(0usize..8, 0..24)) {
        let esc = escape_help(&palette_string(&ixs));
        prop_assert!(!esc.contains('\n'));
    }
}

/// Every sample line in the exposition names a metric that (a) matches
/// the Prometheus name grammar and (b) was announced by `# HELP` and
/// `# TYPE` lines earlier in the stream.
#[test]
fn prometheus_exposition_is_well_formed() {
    let series: Vec<SamplePoint> = (1..=5)
        .map(|i| SamplePoint {
            t_ns: i * 1_000_000_000,
            events: 10 * i,
            queue_depth: i,
            packets_live: 2 * i,
            mod_held: i,
            probes_sent: i,
            rtts_completed: i,
            packets_lost: 0,
            released: i,
            abs_delay_error_ns: 1000 * i,
            station_frames: 3 * i,
            degraded_clients: 0,
        })
        .collect();
    let text = telemetry_with(series).to_prometheus();
    let mut announced: Vec<String> = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().expect("HELP names a metric");
            assert!(valid_metric_name(name), "bad HELP name {name:?}");
            announced.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().expect("TYPE names a metric");
            let kind = it.next().expect("TYPE names a kind");
            assert!(matches!(kind, "counter" | "gauge"), "bad kind {kind:?}");
            assert!(
                announced.contains(&name.to_string()),
                "TYPE before HELP for {name}"
            );
            typed.push(name.to_string());
        } else if !line.is_empty() {
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line names a metric");
            assert!(valid_metric_name(name), "bad metric name {name:?}");
            assert!(
                typed.contains(&name.to_string()),
                "sample before TYPE: {line}"
            );
        }
    }
    assert!(typed.len() >= 11, "expected the full metric family set");
}

/// The metric-name validator accepts the grammar and rejects the
/// near-misses that would corrupt an exposition.
#[test]
fn metric_name_grammar() {
    for ok in ["fleet_queue_depth", "a", "_x", "ns:sub_total", "A9_"] {
        assert!(valid_metric_name(ok), "{ok:?} should be valid");
    }
    for bad in ["", "9lives", "has space", "dash-ed", "newline\n", "é"] {
        assert!(!valid_metric_name(bad), "{bad:?} should be invalid");
    }
}
