//! Property coverage for the merge algebra the fleet path leans on.
//!
//! Shard outputs fold into fleet aggregates through two mechanisms:
//! [`MetricsRegistry::merge`] (stage-prefixed registry folding) and
//! the telemetry [`TopK`] trackers. Both must be order-insensitive in
//! exactly the ways the merge code assumes — these proptests pin that
//! down:
//!
//! * merging registries under **distinct prefixes** commutes (the
//!   fleet merges shard registries under per-stage prefixes);
//! * **counters** under one prefix commute and associate (counters
//!   add; gauges and hists are documented last-wins overwrites, so the
//!   fleet only routes commutative data through counters);
//! * [`TopK::offer_max`] is permutation-invariant even under tied
//!   weights (the deterministic `(weight desc, key asc)` total order),
//!   which is what makes per-shard worst-client tracking merge into a
//!   layout-invariant fleet view.

use obs::{MetricsRegistry, TopK};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A registry of counters built from `(suffix index, value)` pairs.
fn counters_from(pairs: &[(u8, u32)]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for &(k, v) in pairs {
        r.add_counter(&format!("c{k}"), u64::from(v));
    }
    r
}

fn snapshot(r: &MetricsRegistry) -> String {
    serde_json::to_string(r).expect("registry serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two stage registries under distinct prefixes lands in
    /// the same snapshot whichever arrives first — including gauges
    /// and hists, which cannot collide across prefixes.
    #[test]
    fn distinct_prefix_merge_commutes(
        a in pvec((0u8..6, 0u32..1000), 0..8),
        b in pvec((0u8..6, 0u32..1000), 0..8),
        ga in 0u32..1000,
        gb in 0u32..1000,
    ) {
        let mut ra = counters_from(&a);
        ra.set_gauge("load", f64::from(ga) / 10.0);
        let mut rb = counters_from(&b);
        rb.set_gauge("load", f64::from(gb) / 10.0);

        let mut ab = MetricsRegistry::new();
        ab.merge("alpha", &ra);
        ab.merge("beta", &rb);
        let mut ba = MetricsRegistry::new();
        ba.merge("beta", &rb);
        ba.merge("alpha", &ra);
        prop_assert_eq!(snapshot(&ab), snapshot(&ba));
    }

    /// Counter-only registries merged under one prefix commute and
    /// associate: any merge tree over the same shard registries yields
    /// the same snapshot (the additive algebra the fleet relies on).
    #[test]
    fn same_prefix_counter_merge_commutes_and_associates(
        a in pvec((0u8..5, 0u32..1000), 0..8),
        b in pvec((0u8..5, 0u32..1000), 0..8),
        c in pvec((0u8..5, 0u32..1000), 0..8),
    ) {
        let (ra, rb, rc) = (counters_from(&a), counters_from(&b), counters_from(&c));

        // (a ⊕ b) ⊕ c
        let mut left = MetricsRegistry::new();
        left.merge("shard", &ra);
        left.merge("shard", &rb);
        left.merge("shard", &rc);
        // c ⊕ (b ⊕ a)
        let mut right = MetricsRegistry::new();
        right.merge("shard", &rc);
        right.merge("shard", &rb);
        right.merge("shard", &ra);
        // a ⊕ (c ⊕ b)
        let mut mixed = MetricsRegistry::new();
        mixed.merge("shard", &ra);
        mixed.merge("shard", &rc);
        mixed.merge("shard", &rb);

        let want = snapshot(&left);
        prop_assert_eq!(&want, &snapshot(&right));
        prop_assert_eq!(&want, &snapshot(&mixed));
    }

    /// `offer_max` top-K is a pure function of the offered *set*:
    /// permuting the stream never changes the ranked result, even with
    /// tied weights competing for the last slot (ties resolve by the
    /// smaller key, a total order).
    #[test]
    fn topk_offer_max_is_permutation_invariant_under_ties(
        // Keys from a small domain and weights from a tiny range force
        // dense ties; dedup to the offer-once regime the fleet uses.
        raw in pvec((0u64..32, 0u64..4), 1..24),
        capacity in 1usize..6,
        rot in 0usize..24,
    ) {
        let mut seen = std::collections::BTreeSet::new();
        let fwd: Vec<(u64, u64)> = raw.into_iter().filter(|(k, _)| seen.insert(*k)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut rotated = fwd.clone();
        let pivot = rot % rotated.len().max(1);
        rotated.rotate_left(pivot);

        let feed = |stream: &[(u64, u64)]| {
            let mut t = TopK::new(capacity);
            for &(k, w) in stream {
                t.offer_max(k, w);
            }
            t.ranked()
        };
        let want = feed(&fwd);
        prop_assert_eq!(&want, &feed(&rev));
        prop_assert_eq!(&want, &feed(&rotated));

        // The ranking is the deterministic total order, and for
        // offer-once streams it is exactly the K best of the set.
        let mut best: Vec<(u64, u64)> = fwd.clone();
        best.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        best.truncate(capacity);
        let got: Vec<(u64, u64)> = want.iter().map(|e| (e.key, e.weight)).collect();
        let want_pairs: Vec<(u64, u64)> = best;
        prop_assert_eq!(got, want_pairs);
        for e in &want {
            prop_assert_eq!(e.error, 0, "offer_max carries no error");
        }
    }

    /// Merging per-shard `offer_max` trackers is independent of shard
    /// order and equals one tracker fed the whole stream — the exact
    /// merge the fleet performs over per-client p95 entries (each key
    /// offered in exactly one shard).
    #[test]
    fn topk_shard_merge_matches_global_feed(
        raw in pvec((0u64..24, 0u64..5), 1..20),
        capacity in 1usize..5,
        split in 0usize..20,
    ) {
        let mut seen = std::collections::BTreeSet::new();
        let all: Vec<(u64, u64)> = raw.into_iter().filter(|(k, _)| seen.insert(*k)).collect();
        let cut = split % (all.len() + 1);
        let (left, right) = all.split_at(cut);

        let feed = |stream: &[(u64, u64)]| {
            let mut t = TopK::new(capacity);
            for &(k, w) in stream {
                t.offer_max(k, w);
            }
            t
        };
        let global = feed(&all).ranked();

        let mut lr = feed(left);
        lr.merge_max(&feed(right));
        let mut rl = feed(right);
        rl.merge_max(&feed(left));
        prop_assert_eq!(&global, &lr.ranked());
        prop_assert_eq!(&global, &rl.ranked());
    }
}
