//! Golden-file test for the Chrome trace-event / Perfetto export
//! schema: field order is fixed, timestamps are virtual microseconds,
//! and no wall-clock or environment-dependent field may ever appear.
//! If this test fails after an intentional schema change, regenerate
//! the golden file (the test prints the fresh export on mismatch) and
//! bump the `schema` field in `otherData`.

use obs::flight::{FlightRecorder, Stage};

const GOLDEN: &str = include_str!("golden/flight_trace.json");

/// A small, fully deterministic recording exercising every event shape
/// the exporter emits: metadata, spans, instants, resolved packet ids,
/// tuple references, detail escaping, sub-µs timestamps, and a
/// multi-stage flow-arrow chain.
fn sample_recorder() -> FlightRecorder {
    let mut r = FlightRecorder::new(64);
    let probe = 0xAAAA;
    let parsed = 0xBBBB;
    let bench = 0xCCCC;

    let id = r.assign(probe);
    r.alias(parsed, id);
    r.instant(
        Stage::Collect,
        "collect",
        Some(probe),
        None,
        1_000_500,
        "out echo id=7 seq=1".to_string(),
    );
    r.span(
        Stage::Netsim,
        "transit",
        Some(probe),
        None,
        1_000_500,
        1_250_000,
        "wl n0 -> n2 106B".to_string(),
    );
    r.span(
        Stage::Wavelan,
        "air",
        Some(probe),
        None,
        1_250_000,
        2_000_000,
        "up 106B wait 0.1ms @2.0Mb/s".to_string(),
    );
    r.instant(
        Stage::Wavelan,
        "rate-change",
        None,
        None,
        2_500_000,
        "2.0 -> 1.0 Mb/s".to_string(),
    );
    r.instant(
        Stage::Distill,
        "tuple",
        None,
        Some(0),
        6_000_000,
        "covers 0.0s..5.0s F=12.000ms loss=0.010".to_string(),
    );
    r.instant(
        Stage::Distill,
        "attribute",
        Some(parsed),
        Some(0),
        6_000_000,
        "estimate at 1.0s (solved) fed tuple 0".to_string(),
    );
    r.assign(bench);
    r.span(
        Stage::Modulate,
        "hold",
        Some(bench),
        Some(0),
        7_000_000,
        7_012_345,
        "held 12.345ms err +0.345ms".to_string(),
    );
    r.instant(
        Stage::Modulate,
        "drop",
        Some(bench),
        Some(0),
        8_000_000,
        "loss process p=0.0100 \"q\"".to_string(),
    );
    r
}

#[test]
fn export_matches_golden_bytes() {
    let trace = sample_recorder().to_chrome_trace();
    // `REGEN_GOLDEN=1 cargo test -p obs --test perfetto_golden` (twice:
    // once to rewrite, once to verify against the recompiled golden).
    if std::env::var("REGEN_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/flight_trace.json"
        );
        std::fs::write(path, &trace).expect("write golden");
    }
    assert_eq!(
        trace, GOLDEN,
        "Perfetto export schema changed; if intentional, regenerate \
         tests/golden/flight_trace.json with REGEN_GOLDEN=1"
    );
}

#[test]
fn export_has_no_wall_clock_fields() {
    let trace = sample_recorder().to_chrome_trace();
    // Chrome-trace fields that would leak host time or environment.
    for forbidden in [
        "wall",
        "timestamp",
        "date",
        "hostname",
        "\"pid\":0",
        "tts", // thread-clock timestamps are wall-clock derived
    ] {
        assert!(
            !trace.contains(forbidden),
            "export must not contain '{forbidden}'"
        );
    }
}

#[test]
fn export_is_valid_json_with_expected_layout() {
    use serde::Value;
    let trace = sample_recorder().to_chrome_trace();
    let v: Value = serde_json::from_str(&trace).expect("export must parse as JSON");
    let entries = v.as_object().expect("top level is an object");
    let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
    // Stable top-level field order.
    assert_eq!(keys, ["displayTimeUnit", "otherData", "traceEvents"]);
    let events = Value::field(entries, "traceEvents")
        .and_then(|e| match e {
            Value::Seq(s) => Some(s),
            _ => None,
        })
        .expect("traceEvents is an array");
    // 6 metadata + 8 records + flow arrows: a 4-event probe chain
    // (collect, transit, air, attribute via the parsed-record alias)
    // and a 2-event benchmark chain (hold, drop).
    assert_eq!(events.len(), 6 + 8 + 6);
}
