//! Property tests for the flight recorder's ring-buffer invariants:
//! bounded retention, oldest-first eviction (contiguous trailing seq
//! range), and the never-split guarantee — a span's begin and end can
//! never land on opposite sides of an eviction, because only complete
//! records enter the ring.

use obs::flight::{FlightRecorder, SpanToken, Stage};
use proptest::prelude::*;

/// One randomized recorder operation.
/// `(kind, t, d)`: 0 = instant at `t`; 1 = complete span `[t, t+d]`;
/// 2 = begin an open span at `t`; 3 = end the oldest open span at `t`.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec((0u8..4, 0u64..1_000_000, 0u64..1_000), 1..200)
}

proptest! {
    #[test]
    fn ring_is_bounded_contiguous_and_never_splits(
        ops in arb_ops(),
        capacity in 1usize..24,
    ) {
        let mut r = FlightRecorder::new(capacity);
        let mut open: Vec<SpanToken> = Vec::new();
        let mut completed: u64 = 0;
        for &(kind, t, d) in &ops {
            match kind {
                0 => {
                    r.instant(Stage::Collect, "i", Some(t), None, t, String::new());
                    completed += 1;
                }
                1 => {
                    r.span(Stage::Modulate, "s", Some(t), None, t, t + d, String::new());
                    completed += 1;
                }
                2 => open.push(r.begin_span(
                    Stage::Wavelan,
                    "o",
                    Some(t),
                    None,
                    t,
                    String::new(),
                )),
                _ => {
                    if !open.is_empty() {
                        let tok = open.remove(0);
                        r.end_span(tok, t);
                        // An abandoned-open token is counted, not
                        // pushed; a live one becomes a record.
                    }
                }
            }
            // Bounded retention at every step, not just at the end.
            prop_assert!(r.len() <= r.capacity(), "ring over capacity");
            prop_assert_eq!(
                r.evicted() + r.len() as u64,
                r.pushed(),
                "evicted + retained != pushed"
            );
        }

        // Ends on tokens the side table had already abandoned under
        // pressure are counted in dropped_open, so pushed can lag the
        // ends we issued — but never exceed what completed.
        prop_assert!(r.pushed() >= completed, "completed records must be pushed");

        let seqs: Vec<u64> = r.records().map(|rec| rec.seq).collect();
        if let (Some(&min), Some(&max)) = (seqs.first(), seqs.last()) {
            // Oldest-first eviction: the ring retains exactly the
            // trailing contiguous window of sequence numbers.
            prop_assert_eq!(max - min + 1, seqs.len() as u64, "seq range not contiguous");
            prop_assert_eq!(max + 1, r.pushed(), "newest record missing");
            prop_assert_eq!(min, r.evicted(), "oldest retained != eviction count");
            prop_assert!(
                seqs.windows(2).all(|w| w[1] == w[0] + 1),
                "seqs not ascending by one"
            );
        }

        // Never-split: every retained record is complete (an end at or
        // after its begin); no bare begin can survive in the ring.
        for rec in r.records() {
            prop_assert!(rec.end_ns >= rec.begin_ns, "record with end before begin");
        }
    }
}
