//! An NFS-like network file service over UDP RPC (§4.2).
//!
//! The Andrew benchmark runs over NFS, whose salient properties the
//! paper calls out: UDP transport, no adaptation to network quality,
//! and two message classes — small status checks (GETATTR/LOOKUP) and
//! larger data exchanges (READ/WRITE). We implement a compact NFSv2-
//! shaped protocol. The default transfer block is 1 KB (the historical
//! choice for lossy networks); 8 KB blocks — the wired-NFS default,
//! which exercises the stack's IP fragmentation — are supported via
//! [`crate::AndrewConfig::block`] and the `count` field of READ.
//!
//! Wire format (all integers big-endian):
//!
//! ```text
//! request:  xid u32 | proc u8 | handle u32 | arg u32 | count u32 | data…
//! reply:    xid u32 | status u8 | value u32 | data…
//! ```

use netsim::{SimDuration, SimTime};
use netstack::{App, AppEvent, HostApi};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The NFS service port.
pub const NFS_PORT: u16 = 2049;
/// Default transfer block size (rsize/wsize).
pub const BLOCK: usize = 1024;
/// Largest block the server will return for one READ.
pub const MAX_BLOCK: usize = 8192;

/// RPC procedure numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsProc {
    /// No-op (mount ping).
    Null,
    /// Attribute fetch — a small status check.
    GetAttr,
    /// Name lookup in a directory — small.
    Lookup,
    /// Read a block — large reply.
    Read,
    /// Write a block — large request.
    Write,
    /// Create a file.
    Create,
    /// Create a directory.
    MkDir,
    /// List a directory — medium reply.
    ReadDir,
    /// Remove a file.
    Remove,
}

impl NfsProc {
    fn to_byte(self) -> u8 {
        match self {
            NfsProc::Null => 0,
            NfsProc::GetAttr => 1,
            NfsProc::Lookup => 2,
            NfsProc::Read => 3,
            NfsProc::Write => 4,
            NfsProc::Create => 5,
            NfsProc::MkDir => 6,
            NfsProc::ReadDir => 7,
            NfsProc::Remove => 8,
        }
    }

    fn from_byte(b: u8) -> Option<NfsProc> {
        Some(match b {
            0 => NfsProc::Null,
            1 => NfsProc::GetAttr,
            2 => NfsProc::Lookup,
            3 => NfsProc::Read,
            4 => NfsProc::Write,
            5 => NfsProc::Create,
            6 => NfsProc::MkDir,
            7 => NfsProc::ReadDir,
            8 => NfsProc::Remove,
            _ => return None,
        })
    }
}

/// Encode a request datagram.
pub fn encode_request(
    xid: u32,
    proc_: NfsProc,
    handle: u32,
    arg: u32,
    count: u32,
    data_len: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + data_len);
    out.extend_from_slice(&xid.to_be_bytes());
    out.push(proc_.to_byte());
    out.extend_from_slice(&handle.to_be_bytes());
    out.extend_from_slice(&arg.to_be_bytes());
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&vec![0x5A; data_len]); // file contents are opaque
    out
}

/// Decoded request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Transaction id.
    pub xid: u32,
    /// Procedure.
    pub proc_: NfsProc,
    /// File/dir handle.
    pub handle: u32,
    /// Procedure-specific argument (offset, name hash, …).
    pub arg: u32,
    /// Count (bytes for READ/WRITE).
    pub count: u32,
    /// Bytes of attached data (WRITE payload).
    pub data_len: u32,
}

/// Parse a request datagram (17-byte header + optional WRITE payload).
pub fn decode_request(d: &[u8]) -> Option<Request> {
    if d.len() < 17 {
        return None;
    }
    Some(Request {
        xid: u32::from_be_bytes(d[0..4].try_into().ok()?),
        proc_: NfsProc::from_byte(d[4])?,
        handle: u32::from_be_bytes(d[5..9].try_into().ok()?),
        arg: u32::from_be_bytes(d[9..13].try_into().ok()?),
        count: u32::from_be_bytes(d[13..17].try_into().ok()?),
        data_len: (d.len() - 17) as u32,
    })
}

/// Decoded reply header: (xid, status, value).
pub fn decode_reply(d: &[u8]) -> Option<(u32, u8, u32)> {
    if d.len() < 9 {
        return None;
    }
    Some((
        u32::from_be_bytes(d[0..4].try_into().ok()?),
        d[4],
        u32::from_be_bytes(d[5..9].try_into().ok()?),
    ))
}

fn encode_reply(xid: u32, status: u8, value: u32, pad: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + pad);
    out.extend_from_slice(&xid.to_be_bytes());
    out.push(status);
    out.extend_from_slice(&value.to_be_bytes());
    out.extend_from_slice(&vec![0xA5; pad]);
    out
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FsNode {
    is_dir: bool,
    size: usize,
    children: Vec<(u32, u32)>, // (name hash, handle)
}

/// The NFS server application: a small in-memory filesystem plus the
/// request dispatcher. Replies are delayed by a per-op service time.
pub struct NfsServer {
    /// Listening port.
    pub port: u16,
    /// Per-request server processing time.
    pub service_time: SimDuration,
    fs: HashMap<u32, FsNode>,
    next_handle: u32,
    queue: HashMap<u32, (Ipv4Addr, u16, Vec<u8>)>, // timer token → reply
    next_token: u32,
    /// Requests served, by class: (status checks, data ops).
    pub served: (u64, u64),
    /// Duplicate-request cache (xid → last reply) so retransmitted
    /// non-idempotent ops are answered consistently.
    replay_cache: HashMap<(Ipv4Addr, u16, u32), Vec<u8>>,
}

/// The root directory handle.
pub const ROOT_HANDLE: u32 = 1;

impl NfsServer {
    /// Fresh server with an empty root.
    pub fn new() -> Self {
        let mut fs = HashMap::new();
        fs.insert(
            ROOT_HANDLE,
            FsNode {
                is_dir: true,
                size: 0,
                children: Vec::new(),
            },
        );
        NfsServer {
            port: NFS_PORT,
            service_time: SimDuration::from_millis(1),
            fs,
            next_handle: 2,
            queue: HashMap::new(),
            next_token: 1,
            served: (0, 0),
            replay_cache: HashMap::new(),
        }
    }

    /// Number of filesystem nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.fs.len()
    }

    fn execute(&mut self, req: Request) -> Vec<u8> {
        match req.proc_ {
            NfsProc::Null => encode_reply(req.xid, 0, 0, 0),
            NfsProc::GetAttr => {
                self.served.0 += 1;
                let ok = self.fs.contains_key(&req.handle);
                encode_reply(req.xid, !ok as u8, req.handle, 84) // 96B total
            }
            NfsProc::Lookup => {
                self.served.0 += 1;
                let child = self
                    .fs
                    .get(&req.handle)
                    .and_then(|n| n.children.iter().find(|&&(h, _)| h == req.arg))
                    .map(|&(_, handle)| handle);
                match child {
                    Some(h) => encode_reply(req.xid, 0, h, 116),
                    None => encode_reply(req.xid, 2, 0, 0), // ENOENT
                }
            }
            NfsProc::Read => {
                self.served.1 += 1;
                match self.fs.get(&req.handle) {
                    Some(n) if !n.is_dir => {
                        let offset = req.arg as usize;
                        let want = (req.count as usize).clamp(1, MAX_BLOCK);
                        let n_bytes = n.size.saturating_sub(offset).min(want);
                        encode_reply(req.xid, 0, n_bytes as u32, n_bytes)
                    }
                    _ => encode_reply(req.xid, 2, 0, 0),
                }
            }
            NfsProc::Write => {
                self.served.1 += 1;
                match self.fs.get_mut(&req.handle) {
                    Some(n) if !n.is_dir => {
                        let end = req.arg as usize + req.data_len as usize;
                        n.size = n.size.max(end);
                        encode_reply(req.xid, 0, req.data_len, 20) // 32B attrs
                    }
                    _ => encode_reply(req.xid, 2, 0, 0),
                }
            }
            NfsProc::Create | NfsProc::MkDir => {
                self.served.0 += 1;
                let is_dir = req.proc_ == NfsProc::MkDir;
                let Some(parent) = self.fs.get(&req.handle).cloned() else {
                    return encode_reply(req.xid, 2, 0, 0);
                };
                if !parent.is_dir {
                    return encode_reply(req.xid, 20, 0, 0); // ENOTDIR
                }
                if let Some(&(_, h)) = parent.children.iter().find(|&&(nh, _)| nh == req.arg) {
                    return encode_reply(req.xid, 0, h, 116); // already exists
                }
                let h = self.next_handle;
                self.next_handle += 1;
                self.fs.insert(
                    h,
                    FsNode {
                        is_dir,
                        size: 0,
                        children: Vec::new(),
                    },
                );
                self.fs
                    .get_mut(&req.handle)
                    .expect("parent exists")
                    .children
                    .push((req.arg, h));
                encode_reply(req.xid, 0, h, 116)
            }
            NfsProc::ReadDir => {
                self.served.0 += 1;
                match self.fs.get(&req.handle) {
                    Some(n) if n.is_dir => {
                        let entries = n.children.len();
                        encode_reply(req.xid, 0, entries as u32, 16 + entries * 32)
                    }
                    _ => encode_reply(req.xid, 20, 0, 0),
                }
            }
            NfsProc::Remove => {
                self.served.0 += 1;
                let Some(parent) = self.fs.get_mut(&req.handle) else {
                    return encode_reply(req.xid, 2, 0, 0);
                };
                match parent.children.iter().position(|&(nh, _)| nh == req.arg) {
                    Some(i) => {
                        let (_, h) = parent.children.remove(i);
                        self.fs.remove(&h);
                        encode_reply(req.xid, 0, 0, 0)
                    }
                    None => encode_reply(req.xid, 2, 0, 0),
                }
            }
        }
    }
}

impl Default for NfsServer {
    fn default() -> Self {
        NfsServer::new()
    }
}

impl App for NfsServer {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                api.udp_bind(self.port);
            }
            AppEvent::UdpDatagram { from, data, .. } => {
                let Some(req) = decode_request(&data) else {
                    return;
                };
                let key = (from.0, from.1, req.xid);
                let reply = if let Some(cached) = self.replay_cache.get(&key) {
                    cached.clone()
                } else {
                    let r = self.execute(req);
                    // Small bounded replay cache.
                    if self.replay_cache.len() > 512 {
                        self.replay_cache.clear();
                    }
                    self.replay_cache.insert(key, r.clone());
                    r
                };
                let token = self.next_token;
                self.next_token = self.next_token.wrapping_add(1);
                self.queue.insert(token, (from.0, from.1, reply));
                let st = self.service_time;
                api.set_timer(st, token);
            }
            AppEvent::Timer { token } => {
                if let Some((ip, port, reply)) = self.queue.remove(&token) {
                    let p = self.port;
                    api.udp_send(p, (ip, port), &reply);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "nfs-server"
    }
}

// ---------------------------------------------------------------------
// Client-side RPC engine
// ---------------------------------------------------------------------

/// Timer token the RPC engine uses (callers must route it back).
pub const RPC_RETRANS_TIMER: u32 = 0x4E46;

struct PendingRpc {
    xid: u32,
    datagram: Vec<u8>,
    timeout: SimDuration,
    retries: u32,
    sent_at: SimTime,
}

/// A synchronous-style UDP RPC client with retransmission and
/// exponential backoff (one outstanding call, like a hard-mounted NFSv2
/// client without biod).
pub struct RpcClient {
    /// Server address.
    pub server: (Ipv4Addr, u16),
    /// Our bound UDP port (set at Start by the owner).
    pub port: u16,
    /// Initial retransmission timeout (historical `timeo=7` ≈ 0.7 s).
    pub initial_timeout: SimDuration,
    /// Timeout cap.
    pub max_timeout: SimDuration,
    next_xid: u32,
    pending: Option<PendingRpc>,
    /// Total calls issued.
    pub calls: u64,
    /// Total retransmissions.
    pub retransmissions: u64,
}

impl RpcClient {
    /// Client talking to `server`.
    pub fn new(server: Ipv4Addr) -> Self {
        RpcClient {
            server: (server, NFS_PORT),
            port: 0,
            initial_timeout: SimDuration::from_millis(700),
            max_timeout: SimDuration::from_secs(30),
            next_xid: 1,
            pending: None,
            calls: 0,
            retransmissions: 0,
        }
    }

    /// Is a call outstanding?
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Issue a call. Panics if one is already outstanding (the Andrew
    /// driver is strictly sequential).
    pub fn call(
        &mut self,
        api: &mut HostApi<'_, '_>,
        proc_: NfsProc,
        handle: u32,
        arg: u32,
        count: u32,
        data_len: usize,
    ) -> u32 {
        assert!(self.pending.is_none(), "RPC already outstanding");
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let datagram = encode_request(xid, proc_, handle, arg, count, data_len);
        api.udp_send(self.port, self.server, &datagram);
        let timeout = self.initial_timeout;
        self.pending = Some(PendingRpc {
            xid,
            datagram,
            timeout,
            retries: 0,
            sent_at: api.now(),
        });
        self.calls += 1;
        api.set_timer(timeout, RPC_RETRANS_TIMER);
        xid
    }

    /// Feed an incoming datagram. Returns `Some((status, value, data_len))`
    /// when it completes the outstanding call.
    pub fn on_datagram(&mut self, data: &[u8]) -> Option<(u8, u32, usize)> {
        let (xid, status, value) = decode_reply(data)?;
        let p = self.pending.as_ref()?;
        if p.xid != xid {
            return None; // stale reply for a timed-out call
        }
        self.pending = None;
        Some((status, value, data.len().saturating_sub(9)))
    }

    /// Handle the retransmission timer. Re-sends with backoff if the call
    /// is still outstanding and the timeout genuinely expired.
    pub fn on_timer(&mut self, api: &mut HostApi<'_, '_>) {
        let now = api.now();
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if now.since(p.sent_at) < p.timeout {
            // Stale timer from an earlier call; re-arm for the remainder.
            let remain = p.timeout - now.since(p.sent_at);
            api.set_timer(remain, RPC_RETRANS_TIMER);
            return;
        }
        // Retransmit with exponential backoff (hard mount: never give up).
        p.retries += 1;
        p.timeout = (p.timeout * 2).min(self.max_timeout);
        p.sent_at = now;
        let datagram = p.datagram.clone();
        let timeout = p.timeout;
        let (port, server) = (self.port, self.server);
        self.retransmissions += 1;
        api.udp_send(port, server, &datagram);
        api.set_timer(timeout, RPC_RETRANS_TIMER);
    }
}

/// FNV-1a hash for file names → the `arg` field of LOOKUP/CREATE.
pub fn name_hash(name: &str) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_round_trip() {
        let d = encode_request(42, NfsProc::Write, 7, 1024, 1024, 1024);
        let r = decode_request(&d).unwrap();
        assert_eq!(r.xid, 42);
        assert_eq!(r.proc_, NfsProc::Write);
        assert_eq!(r.handle, 7);
        assert_eq!(r.arg, 1024);
        assert_eq!(r.data_len, 1024);
        assert!(decode_request(&d[..5]).is_none());
    }

    #[test]
    fn server_filesystem_operations() {
        let mut s = NfsServer::new();
        // MKDIR /sub
        let r = s.execute(Request {
            xid: 1,
            proc_: NfsProc::MkDir,
            handle: ROOT_HANDLE,
            arg: name_hash("sub"),
            count: 0,
            data_len: 0,
        });
        let (_, status, sub) = decode_reply(&r).unwrap();
        assert_eq!(status, 0);
        // CREATE /sub/file
        let r = s.execute(Request {
            xid: 2,
            proc_: NfsProc::Create,
            handle: sub,
            arg: name_hash("file"),
            count: 0,
            data_len: 0,
        });
        let (_, status, file) = decode_reply(&r).unwrap();
        assert_eq!(status, 0);
        // WRITE 1 KB at offset 0.
        let r = s.execute(Request {
            xid: 3,
            proc_: NfsProc::Write,
            handle: file,
            arg: 0,
            count: 1024,
            data_len: 1024,
        });
        assert_eq!(decode_reply(&r).unwrap().1, 0);
        // READ it back: full block available.
        let r = s.execute(Request {
            xid: 4,
            proc_: NfsProc::Read,
            handle: file,
            arg: 0,
            count: 1024,
            data_len: 0,
        });
        let (_, status, n) = decode_reply(&r).unwrap();
        assert_eq!(status, 0);
        assert_eq!(n, 1024);
        assert_eq!(r.len(), 9 + 1024);
        // LOOKUP finds it; ReadDir sees one entry.
        let r = s.execute(Request {
            xid: 5,
            proc_: NfsProc::Lookup,
            handle: sub,
            arg: name_hash("file"),
            count: 0,
            data_len: 0,
        });
        assert_eq!(decode_reply(&r).unwrap().2, file);
        let r = s.execute(Request {
            xid: 6,
            proc_: NfsProc::ReadDir,
            handle: sub,
            arg: 0,
            count: 0,
            data_len: 0,
        });
        assert_eq!(decode_reply(&r).unwrap().2, 1);
        // REMOVE deletes.
        let r = s.execute(Request {
            xid: 7,
            proc_: NfsProc::Remove,
            handle: sub,
            arg: name_hash("file"),
            count: 0,
            data_len: 0,
        });
        assert_eq!(decode_reply(&r).unwrap().1, 0);
        assert_eq!(s.node_count(), 2); // root + sub
    }

    #[test]
    fn lookup_missing_is_enoent() {
        let mut s = NfsServer::new();
        let r = s.execute(Request {
            xid: 1,
            proc_: NfsProc::Lookup,
            handle: ROOT_HANDLE,
            arg: name_hash("ghost"),
            count: 0,
            data_len: 0,
        });
        assert_eq!(decode_reply(&r).unwrap().1, 2);
    }

    #[test]
    fn getattr_reply_is_small_and_read_reply_is_large() {
        let mut s = NfsServer::new();
        let small = s.execute(Request {
            xid: 1,
            proc_: NfsProc::GetAttr,
            handle: ROOT_HANDLE,
            arg: 0,
            count: 0,
            data_len: 0,
        });
        assert_eq!(small.len(), 93); // the paper's "status check" class
        assert!(small.len() < 200);
    }

    #[test]
    fn name_hash_distinct() {
        assert_ne!(name_hash("a"), name_hash("b"));
        assert_eq!(name_hash("file1"), name_hash("file1"));
    }

    #[test]
    fn create_is_idempotent_via_existing_entry() {
        let mut s = NfsServer::new();
        let mk = |s: &mut NfsServer, xid| {
            let r = s.execute(Request {
                xid,
                proc_: NfsProc::Create,
                handle: ROOT_HANDLE,
                arg: name_hash("f"),
                count: 0,
                data_len: 0,
            });
            decode_reply(&r).unwrap().2
        };
        let h1 = mk(&mut s, 1);
        let h2 = mk(&mut s, 2);
        assert_eq!(h1, h2);
    }
}
