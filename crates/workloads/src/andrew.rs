//! The Andrew benchmark (§4.2, Figure 8) over the NFS-like service: a
//! source tree of ~70 files totalling ~200 KB, processed in five phases
//! — MakeDir, Copy, ScanDir, ReadAll, Make. ScanDir and ReadAll operate
//! on warm caches and transmit only small status checks; Copy and Make
//! move data. CPU costs (compilation dominates Make) are modeled as
//! compute steps interleaved between RPCs, calibrated so the Ethernet
//! baseline approximates the paper's final row.

use crate::nfs::{name_hash, NfsProc, RpcClient, ROOT_HANDLE, RPC_RETRANS_TIMER};
use netsim::{SimDuration, SimTime};
use netstack::{App, AppEvent, HostApi};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Benchmark phases, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Create the directory tree.
    MakeDir,
    /// Copy the source files into it.
    Copy,
    /// Stat every file (warm cache: status checks only).
    ScanDir,
    /// Read every file (warm cache: status checks only).
    ReadAll,
    /// Compile (CPU-dominated, with object-file writes).
    Make,
}

impl Phase {
    /// All phases in benchmark order.
    pub const ALL: [Phase; 5] = [
        Phase::MakeDir,
        Phase::Copy,
        Phase::ScanDir,
        Phase::ReadAll,
        Phase::Make,
    ];

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::MakeDir => "MakeDir",
            Phase::Copy => "Copy",
            Phase::ScanDir => "ScanDir",
            Phase::ReadAll => "ReadAll",
            Phase::Make => "Make",
        }
    }
}

/// Where a step's file handle comes from.
#[derive(Debug, Clone, Copy)]
enum HandleRef {
    Root,
    Dir(usize),
    File(usize),
    Object(usize),
}

/// Where to store a returned handle.
#[derive(Debug, Clone, Copy)]
enum Store {
    Dir(usize),
    File(usize),
    Object(usize),
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Rpc {
        proc_: NfsProc,
        handle: HandleRef,
        arg: u32,
        count: u32,
        data_len: usize,
        store: Option<Store>,
    },
    Compute(SimDuration),
}

/// Timing of one completed phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTiming {
    /// Which phase.
    pub phase: Phase,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl PhaseTiming {
    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// Benchmark shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct AndrewConfig {
    /// Number of directories in the tree.
    pub dirs: usize,
    /// Number of source files (~70 in the paper).
    pub files: usize,
    /// Per-phase compute budgets (seconds), calibrated to the paper's
    /// Ethernet row.
    pub compute: [f64; 5],
    /// NFS transfer block size (rsize/wsize). 1 KB by default (the
    /// lossy-network setting the validation is calibrated to); 8 KB
    /// exercises IP fragmentation like a wired NFS client.
    pub block: usize,
}

impl Default for AndrewConfig {
    fn default() -> Self {
        AndrewConfig {
            dirs: 20,
            files: 70,
            // MakeDir, Copy, ScanDir, ReadAll, Make — tuned so the
            // isolated-Ethernet baseline lands near 2.25 / 12.5 / 7.75 /
            // 17.5 / 84 seconds.
            compute: [2.2, 11.9, 7.4, 17.1, 83.0],
            block: crate::nfs::BLOCK,
        }
    }
}

fn file_size(f: usize) -> usize {
    // 1–5 KB, mean ≈ 3 KB → ~210 KB over 70 files ("about 200 KB").
    1024 * (1 + (f * 7 + 3) % 5)
}

const COMPUTE_TIMER: u32 = 0xC0;

/// The benchmark driver application.
pub struct AndrewBenchmark {
    rpc: RpcClient,
    script: VecDeque<(Phase, Step)>,
    dirs: Vec<u32>,
    files: Vec<u32>,
    objects: Vec<u32>,
    pending_store: Option<Store>,
    current: Option<(Phase, SimTime)>,
    /// Completed phase timings.
    pub results: Vec<PhaseTiming>,
    /// True once all phases completed.
    pub finished: bool,
    /// Total benchmark elapsed time once finished.
    pub total: Option<SimDuration>,
    started_at: Option<SimTime>,
    /// The configuration this run was built from.
    pub cfg: AndrewConfig,
}

impl AndrewBenchmark {
    /// Benchmark against the NFS server at `server`.
    pub fn new(server: Ipv4Addr, cfg: AndrewConfig) -> Self {
        let script = build_script(&cfg);
        AndrewBenchmark {
            rpc: RpcClient::new(server),
            script,
            dirs: vec![0; cfg.dirs],
            files: vec![0; cfg.files],
            objects: vec![0; cfg.files],
            pending_store: None,
            current: None,
            results: Vec::new(),
            finished: false,
            total: None,
            started_at: None,
            cfg,
        }
    }

    /// RPC statistics: (calls, retransmissions).
    pub fn rpc_stats(&self) -> (u64, u64) {
        (self.rpc.calls, self.rpc.retransmissions)
    }

    fn resolve(&self, h: HandleRef) -> u32 {
        match h {
            HandleRef::Root => ROOT_HANDLE,
            HandleRef::Dir(i) => self.dirs[i],
            HandleRef::File(i) => self.files[i],
            HandleRef::Object(i) => self.objects[i],
        }
    }

    fn store(&mut self, s: Store, handle: u32) {
        match s {
            Store::Dir(i) => self.dirs[i] = handle,
            Store::File(i) => self.files[i] = handle,
            Store::Object(i) => self.objects[i] = handle,
        }
    }

    fn advance(&mut self, api: &mut HostApi<'_, '_>) {
        let Some(&(phase, step)) = self.script.front() else {
            // Done: close the final phase.
            if let Some((p, start)) = self.current.take() {
                self.results.push(PhaseTiming {
                    phase: p,
                    start,
                    end: api.now(),
                });
            }
            self.finished = true;
            self.total = self.started_at.map(|s| api.now().since(s));
            return;
        };
        // Phase transition bookkeeping.
        match self.current {
            Some((p, start)) if p != phase => {
                self.results.push(PhaseTiming {
                    phase: p,
                    start,
                    end: api.now(),
                });
                self.current = Some((phase, api.now()));
            }
            None => self.current = Some((phase, api.now())),
            _ => {}
        }
        self.script.pop_front();
        match step {
            Step::Compute(d) => api.set_timer(d, COMPUTE_TIMER),
            Step::Rpc {
                proc_,
                handle,
                arg,
                count,
                data_len,
                store,
            } => {
                let h = self.resolve(handle);
                self.pending_store = store;
                self.rpc.call(api, proc_, h, arg, count, data_len);
            }
        }
    }
}

impl App for AndrewBenchmark {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.rpc.port = api.udp_bind_ephemeral();
                self.started_at = Some(api.now());
                self.advance(api);
            }
            AppEvent::UdpDatagram { data, .. } => {
                if let Some((status, value, _len)) = self.rpc.on_datagram(&data) {
                    if status == 0 {
                        if let Some(s) = self.pending_store.take() {
                            self.store(s, value);
                        }
                    }
                    self.advance(api);
                }
            }
            AppEvent::Timer {
                token: RPC_RETRANS_TIMER,
            } => self.rpc.on_timer(api),
            AppEvent::Timer {
                token: COMPUTE_TIMER,
            } => self.advance(api),
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "andrew-benchmark"
    }
}

/// Build the full five-phase script.
fn build_script(cfg: &AndrewConfig) -> VecDeque<(Phase, Step)> {
    let mut script = VecDeque::new();
    let mut push_phase = |phase: Phase, ops: Vec<Step>, compute_total: f64| {
        // Interleave an even compute slice after every op so network
        // effects and CPU time overlap realistically.
        let n = ops.len().max(1);
        let slice = SimDuration::from_secs_f64(compute_total / n as f64);
        for op in ops {
            script.push_back((phase, op));
            if !slice.is_zero() {
                script.push_back((phase, Step::Compute(slice)));
            }
        }
    };

    // --- MakeDir: create the directory tree ---
    let mut ops = Vec::new();
    for d in 0..cfg.dirs {
        ops.push(Step::Rpc {
            proc_: NfsProc::MkDir,
            handle: HandleRef::Root,
            arg: name_hash(&format!("dir{d}")),
            count: 0,
            data_len: 0,
            store: Some(Store::Dir(d)),
        });
    }
    push_phase(Phase::MakeDir, ops, cfg.compute[0]);

    // --- Copy: create + write every source file ---
    let mut ops = Vec::new();
    for f in 0..cfg.files {
        let dir = f % cfg.dirs;
        ops.push(Step::Rpc {
            proc_: NfsProc::Create,
            handle: HandleRef::Dir(dir),
            arg: name_hash(&format!("src{f}")),
            count: 0,
            data_len: 0,
            store: Some(Store::File(f)),
        });
        let size = file_size(f);
        let mut off = 0;
        while off < size {
            let n = (size - off).min(cfg.block);
            ops.push(Step::Rpc {
                proc_: NfsProc::Write,
                handle: HandleRef::File(f),
                arg: off as u32,
                count: n as u32,
                data_len: n,
                store: None,
            });
            off += n;
        }
        ops.push(Step::Rpc {
            proc_: NfsProc::GetAttr,
            handle: HandleRef::File(f),
            arg: 0,
            count: 0,
            data_len: 0,
            store: None,
        });
    }
    push_phase(Phase::Copy, ops, cfg.compute[1]);

    // --- ScanDir: readdir every directory, stat every file ---
    let mut ops = Vec::new();
    for d in 0..cfg.dirs {
        ops.push(Step::Rpc {
            proc_: NfsProc::ReadDir,
            handle: HandleRef::Dir(d),
            arg: 0,
            count: 0,
            data_len: 0,
            store: None,
        });
    }
    for f in 0..cfg.files {
        ops.push(Step::Rpc {
            proc_: NfsProc::Lookup,
            handle: HandleRef::Dir(f % cfg.dirs),
            arg: name_hash(&format!("src{f}")),
            count: 0,
            data_len: 0,
            store: None,
        });
        ops.push(Step::Rpc {
            proc_: NfsProc::GetAttr,
            handle: HandleRef::File(f),
            arg: 0,
            count: 0,
            data_len: 0,
            store: None,
        });
    }
    push_phase(Phase::ScanDir, ops, cfg.compute[2]);

    // --- ReadAll: warm data cache → consistency status checks only ---
    let mut ops = Vec::new();
    for f in 0..cfg.files {
        ops.push(Step::Rpc {
            proc_: NfsProc::Lookup,
            handle: HandleRef::Dir(f % cfg.dirs),
            arg: name_hash(&format!("src{f}")),
            count: 0,
            data_len: 0,
            store: None,
        });
        // One attribute check per cached block (NFSv2 close-to-open
        // consistency behaviour).
        for _ in 0..(file_size(f) / cfg.block).max(1) {
            ops.push(Step::Rpc {
                proc_: NfsProc::GetAttr,
                handle: HandleRef::File(f),
                arg: 0,
                count: 0,
                data_len: 0,
                store: None,
            });
        }
    }
    push_phase(Phase::ReadAll, ops, cfg.compute[3]);

    // --- Make: compile — stat sources, write object files ---
    let mut ops = Vec::new();
    for f in 0..cfg.files {
        ops.push(Step::Rpc {
            proc_: NfsProc::GetAttr,
            handle: HandleRef::File(f),
            arg: 0,
            count: 0,
            data_len: 0,
            store: None,
        });
        ops.push(Step::Rpc {
            proc_: NfsProc::Create,
            handle: HandleRef::Dir(f % cfg.dirs),
            arg: name_hash(&format!("obj{f}")),
            count: 0,
            data_len: 0,
            store: Some(Store::Object(f)),
        });
        // Object files ≈ 2 KB each.
        let obj_size = 2048usize;
        let mut off = 0;
        while off < obj_size {
            let n = (obj_size - off).min(cfg.block);
            ops.push(Step::Rpc {
                proc_: NfsProc::Write,
                handle: HandleRef::Object(f),
                arg: off as u32,
                count: n as u32,
                data_len: n,
                store: None,
            });
            off += n;
        }
    }
    push_phase(Phase::Make, ops, cfg.compute[4]);

    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs::NfsServer;
    use netsim::{LinkParams, Simulator};
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;

    fn run_andrew(cfg: AndrewConfig) -> Vec<(Phase, f64)> {
        let ip_c = Ipv4Addr::new(10, 0, 0, 1);
        let ip_s = Ipv4Addr::new(10, 0, 0, 2);
        let mut ch = Host::new(
            HostConfig::new("client", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
        );
        let app = ch.add_app(Box::new(AndrewBenchmark::new(ip_s, cfg)));
        let mut sh = Host::new(
            HostConfig::new("nfs", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
        );
        sh.add_app(Box::new(NfsServer::new()));
        let mut sim = Simulator::new(9);
        let nc = sim.add_node(Box::new(ch));
        let ns = sim.add_node(Box::new(sh));
        sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
        start_host(&mut sim, ns, SimTime::ZERO);
        start_host(&mut sim, nc, SimTime::from_millis(5));
        sim.run_until(SimTime::from_secs(600));
        let b: &AndrewBenchmark = sim.node::<Host>(nc).app(app);
        assert!(b.finished, "benchmark did not finish");
        b.results.iter().map(|r| (r.phase, r.secs())).collect()
    }

    #[test]
    fn five_phases_in_order_with_calibrated_times() {
        let times = run_andrew(AndrewConfig::default());
        let phases: Vec<Phase> = times.iter().map(|&(p, _)| p).collect();
        assert_eq!(phases, Phase::ALL.to_vec());
        let by: std::collections::HashMap<Phase, f64> = times.into_iter().collect();
        // Ethernet calibration targets (paper's final row): generous
        // windows — exact calibration happens in the experiment harness.
        assert!((1.5..3.5).contains(&by[&Phase::MakeDir]), "{:?}", by);
        assert!((10.0..16.0).contains(&by[&Phase::Copy]), "{:?}", by);
        assert!((6.0..10.0).contains(&by[&Phase::ScanDir]), "{:?}", by);
        assert!((15.0..21.0).contains(&by[&Phase::ReadAll]), "{:?}", by);
        assert!((78.0..92.0).contains(&by[&Phase::Make]), "{:?}", by);
        let total: f64 = by.values().sum();
        assert!((115.0..135.0).contains(&total), "total {total}");
    }

    #[test]
    fn smaller_tree_runs_faster() {
        let cfg = AndrewConfig {
            dirs: 3,
            files: 6,
            compute: [0.1, 0.2, 0.1, 0.2, 0.5],
            block: crate::nfs::BLOCK,
        };
        let times = run_andrew(cfg);
        let total: f64 = times.iter().map(|&(_, s)| s).sum();
        assert!(total < 5.0, "{total}");
    }

    #[test]
    fn script_op_mix_matches_phase_classes() {
        let cfg = AndrewConfig::default();
        let script = build_script(&cfg);
        // ScanDir and ReadAll must contain no data ops (status checks
        // only), Copy and Make must contain writes.
        let mut data_ops: std::collections::HashMap<Phase, usize> = Default::default();
        for (phase, step) in &script {
            if let Step::Rpc { proc_, .. } = step {
                if matches!(proc_, NfsProc::Read | NfsProc::Write) {
                    *data_ops.entry(*phase).or_default() += 1;
                }
            }
        }
        assert!(!data_ops.contains_key(&Phase::ScanDir));
        assert!(!data_ops.contains_key(&Phase::ReadAll));
        assert!(data_ops[&Phase::Copy] > 100);
        assert!(data_ops[&Phase::Make] > 100);
    }

    #[test]
    fn eight_kb_blocks_reduce_data_rpcs_and_still_complete() {
        // The wired-NFS block size moves whole files per WRITE, cutting
        // the data-op count; the datagrams fragment at the IP layer.
        let small = AndrewConfig {
            dirs: 4,
            files: 10,
            compute: [0.05; 5],
            block: 1024,
        };
        let big = AndrewConfig {
            block: 8192,
            ..small
        };
        let count_writes = |cfg: &AndrewConfig| {
            build_script(cfg)
                .iter()
                .filter(|(_, s)| {
                    matches!(
                        s,
                        Step::Rpc {
                            proc_: NfsProc::Write,
                            ..
                        }
                    )
                })
                .count()
        };
        assert!(count_writes(&big) < count_writes(&small));
        let times = run_andrew(big);
        assert_eq!(times.len(), 5);
    }

    #[test]
    fn source_tree_is_about_200kb() {
        let total: usize = (0..70).map(file_size).sum();
        assert!((180_000..230_000).contains(&total), "{total}");
    }
}
