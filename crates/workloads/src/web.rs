//! The World-Wide-Web benchmark (§4.2): reference traces of five users
//! performing search tasks, replayed as fast as possible against a
//! private web server holding every referenced object (all URLs
//! rewritten to it, as in the paper's setup with a modified Mosaic).
//!
//! Protocol (HTTP/1.0-shaped): one TCP connection per request; client
//! sends `GET <id>\n`; server replies `LEN <n>\n` followed by `n` bytes
//! and closes. The client caches objects it has seen (Mosaic's cache)
//! and charges a per-object browser processing cost.

use netsim::{SimDuration, SimRng, SimTime};
use netstack::{App, AppEvent, HostApi, TcpHandle};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// The private web server's port.
pub const WEB_PORT: u16 = 8080;

/// Deterministic size of object `id`: a long-tailed 1996-era mix of
/// small HTML pages and larger inline images.
pub fn object_size(id: u32, seed: u64) -> usize {
    let mut rng = SimRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Log-uniform between 500 B and 12 KB, squared bias toward small,
    // with a 12% chance of a large image (15–60 KB).
    if rng.chance(0.12) {
        rng.range_u64(15_000, 60_000) as usize
    } else {
        let u = rng.f64();
        (500.0 * (24.0f64).powf(u * u) * 1.0) as usize
    }
}

/// Generate the reference trace: `users` consecutive user sessions of
/// `per_user` references each, with intra-session revisits (cache hits).
pub fn search_task_trace(users: usize, per_user: usize, seed: u64) -> Vec<u32> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(users * per_user);
    for u in 0..users {
        let base = (u as u32) * 10_000;
        let mut visited: Vec<u32> = Vec::new();
        for _ in 0..per_user {
            // 15% revisit probability once something has been visited.
            if !visited.is_empty() && rng.chance(0.15) {
                let idx = rng.range_u64(0, visited.len() as u64) as usize;
                trace.push(visited[idx]);
            } else {
                let id = base + rng.range_u64(0, 5_000) as u32;
                visited.push(id);
                trace.push(id);
            }
        }
    }
    trace
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

enum WebSrvConn {
    AwaitRequest { line: Vec<u8> },
    Think { id: u32 },
    Sending { remaining: usize },
}

/// The private web server.
pub struct WebServer {
    /// Listening port.
    pub port: u16,
    /// Per-request server-side processing time before the response.
    pub processing: SimDuration,
    /// Seed for the object-size function (must match the client's
    /// expectations only via the LEN header, so any seed works).
    pub size_seed: u64,
    conns: HashMap<TcpHandle, WebSrvConn>,
    timer_conn: HashMap<u32, TcpHandle>,
    next_timer: u32,
    /// Requests served.
    pub served: u32,
    chunk: usize,
}

impl WebServer {
    /// Server with paper-calibrated processing cost.
    pub fn new(size_seed: u64) -> Self {
        WebServer {
            port: WEB_PORT,
            processing: SimDuration::from_millis(50),
            size_seed,
            conns: HashMap::new(),
            timer_conn: HashMap::new(),
            next_timer: 1,
            served: 0,
            chunk: 8192,
        }
    }

    fn pump(&mut self, conn: TcpHandle, api: &mut HostApi<'_, '_>) {
        let Some(WebSrvConn::Sending { remaining }) = self.conns.get_mut(&conn) else {
            return;
        };
        while *remaining > 0 {
            let n = (*remaining).min(self.chunk);
            let sent = api.tcp_send(conn, &vec![0x77u8; n]);
            *remaining -= sent;
            if sent < n {
                return;
            }
        }
        api.tcp_close(conn); // HTTP/1.0: close after response
        self.served += 1;
        self.conns.remove(&conn);
    }

    fn respond(&mut self, conn: TcpHandle, id: u32, api: &mut HostApi<'_, '_>) {
        let size = object_size(id, self.size_seed);
        api.tcp_send(conn, format!("LEN {size}\n").as_bytes());
        self.conns
            .insert(conn, WebSrvConn::Sending { remaining: size });
        self.pump(conn, api);
    }
}

impl App for WebServer {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => api.tcp_listen(self.port),
            AppEvent::TcpAccepted { conn, .. } => {
                self.conns
                    .insert(conn, WebSrvConn::AwaitRequest { line: Vec::new() });
            }
            AppEvent::TcpData { conn, data } => {
                let Some(WebSrvConn::AwaitRequest { line }) = self.conns.get_mut(&conn) else {
                    return;
                };
                line.extend_from_slice(&data);
                let Some(pos) = line.iter().position(|&b| b == b'\n') else {
                    return;
                };
                let req = String::from_utf8_lossy(&line[..pos]).to_string();
                let id: u32 = req
                    .strip_prefix("GET ")
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                self.conns.insert(conn, WebSrvConn::Think { id });
                let token = self.next_timer;
                self.next_timer = self.next_timer.wrapping_add(1);
                self.timer_conn.insert(token, conn);
                let p = self.processing;
                api.set_timer(p, token);
            }
            AppEvent::Timer { token } => {
                if let Some(conn) = self.timer_conn.remove(&token) {
                    if let Some(WebSrvConn::Think { id }) = self.conns.get(&conn) {
                        let id = *id;
                        self.respond(conn, id, api);
                    }
                }
            }
            AppEvent::TcpSendSpace { conn } => self.pump(conn, api),
            AppEvent::TcpPeerClosed { conn } if !self.conns.contains_key(&conn) => {
                api.tcp_close(conn);
            }
            AppEvent::TcpReset { conn, .. } | AppEvent::TcpClosed { conn } => {
                self.conns.remove(&conn);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "web-server"
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

const THINK_TIMER: u32 = 0x1111;
const RETRY_TIMER: u32 = 0x2222;
/// Per-object watchdog; low bits carry a generation so stale timers are
/// ignored (timers cannot be cancelled).
const OBJECT_TIMER_BASE: u32 = 0x4000_0000;

enum WebCliState {
    Idle,
    Connecting,
    AwaitHeader { line: Vec<u8> },
    Receiving { remaining: usize },
    Processing,
    Done,
}

/// The trace-replaying browser.
pub struct WebClient {
    /// Server address.
    pub server: (Ipv4Addr, u16),
    /// Object reference trace to replay.
    pub trace: Vec<u32>,
    /// Per-object browser processing cost (parse + render on a 75 MHz
    /// 486).
    pub processing: SimDuration,
    pos: usize,
    state: WebCliState,
    conn: Option<TcpHandle>,
    cache: HashSet<u32>,
    retries: u32,
    obj_gen: u32,
    /// Give up on an object after this long without completing it.
    pub object_timeout: SimDuration,
    /// Benchmark start.
    pub started_at: Option<SimTime>,
    /// Benchmark end (all references replayed).
    pub finished_at: Option<SimTime>,
    /// Objects fetched over the network.
    pub fetched: u32,
    /// References served from the local cache.
    pub cache_hits: u32,
    /// Transfer failures that exhausted retries.
    pub failures: u32,
}

impl WebClient {
    /// Client replaying `trace` against `server`.
    pub fn new(server: Ipv4Addr, trace: Vec<u32>) -> Self {
        WebClient {
            server: (server, WEB_PORT),
            trace,
            processing: SimDuration::from_millis(520),
            pos: 0,
            state: WebCliState::Idle,
            conn: None,
            cache: HashSet::new(),
            retries: 0,
            obj_gen: 0,
            object_timeout: SimDuration::from_secs(120),
            started_at: None,
            finished_at: None,
            fetched: 0,
            cache_hits: 0,
            failures: 0,
        }
    }

    /// Elapsed benchmark time, if complete.
    pub fn elapsed(&self) -> Option<SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }

    /// True once the whole trace has been replayed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn next_reference(&mut self, api: &mut HostApi<'_, '_>) {
        if self.pos >= self.trace.len() {
            self.finished_at = Some(api.now());
            self.state = WebCliState::Done;
            return;
        }
        let id = self.trace[self.pos];
        if self.cache.contains(&id) {
            // Cache hit: only the processing cost.
            self.cache_hits += 1;
            self.pos += 1;
            self.state = WebCliState::Processing;
            let p = self.processing;
            api.set_timer(p, THINK_TIMER);
            return;
        }
        self.retries = 0;
        self.state = WebCliState::Connecting;
        self.conn = Some(api.tcp_connect(self.server));
        self.obj_gen = self.obj_gen.wrapping_add(1);
        let to = self.object_timeout;
        api.set_timer(to, OBJECT_TIMER_BASE | (self.obj_gen & 0xFFFF));
    }

    fn object_complete(&mut self, api: &mut HostApi<'_, '_>) {
        let id = self.trace[self.pos];
        self.cache.insert(id);
        self.fetched += 1;
        self.pos += 1;
        if let Some(conn) = self.conn.take() {
            api.tcp_close(conn);
        }
        self.state = WebCliState::Processing;
        let p = self.processing;
        api.set_timer(p, THINK_TIMER);
    }

    fn transfer_failed(&mut self, api: &mut HostApi<'_, '_>) {
        self.conn = None;
        self.retries += 1;
        if self.retries > 5 {
            // Give up on this object (a real browser shows an error).
            self.failures += 1;
            self.pos += 1;
            self.next_reference(api);
        } else {
            api.set_timer(SimDuration::from_millis(500), RETRY_TIMER);
        }
    }
}

impl App for WebClient {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.started_at = Some(api.now());
                self.next_reference(api);
            }
            AppEvent::Timer { token: THINK_TIMER } => {
                if matches!(self.state, WebCliState::Processing) {
                    self.next_reference(api);
                }
            }
            AppEvent::Timer { token: RETRY_TIMER }
                if self.conn.is_none() && !matches!(self.state, WebCliState::Done) =>
            {
                self.state = WebCliState::Connecting;
                self.conn = Some(api.tcp_connect(self.server));
            }
            AppEvent::Timer { token }
                if token & OBJECT_TIMER_BASE != 0
                // Stale generations are ignored; a live one means the
                // current object has stalled: abort and retry/skip.
                && token & 0xFFFF == self.obj_gen & 0xFFFF
                    && matches!(
                        self.state,
                        WebCliState::Connecting
                            | WebCliState::AwaitHeader { .. }
                            | WebCliState::Receiving { .. }
                    ) =>
            {
                if let Some(conn) = self.conn.take() {
                    api.tcp_abort(conn);
                }
                self.transfer_failed(api);
            }
            AppEvent::TcpConnected { conn } if Some(conn) == self.conn => {
                let id = self.trace[self.pos];
                api.tcp_send(conn, format!("GET {id}\n").as_bytes());
                self.state = WebCliState::AwaitHeader { line: Vec::new() };
            }
            AppEvent::TcpData { conn, data } if Some(conn) == self.conn => match &mut self.state {
                WebCliState::AwaitHeader { line } => {
                    line.extend_from_slice(&data);
                    let Some(pos) = line.iter().position(|&b| b == b'\n') else {
                        return;
                    };
                    let hdr = String::from_utf8_lossy(&line[..pos]).to_string();
                    let body_len = line.len() - pos - 1;
                    let n: usize = hdr
                        .strip_prefix("LEN ")
                        .and_then(|s| s.trim().parse().ok())
                        .unwrap_or(0);
                    if n <= body_len {
                        self.object_complete(api);
                    } else {
                        self.state = WebCliState::Receiving {
                            remaining: n - body_len,
                        };
                    }
                }
                WebCliState::Receiving { remaining } => {
                    *remaining = remaining.saturating_sub(data.len());
                    if *remaining == 0 {
                        self.object_complete(api);
                    }
                }
                _ => {}
            },
            AppEvent::TcpReset { conn, .. } if Some(conn) == self.conn => {
                self.transfer_failed(api);
            }
            AppEvent::TcpPeerClosed { conn } if Some(conn) == self.conn => {
                // Server closed before we counted all bytes: if we're
                // still receiving this is a truncated transfer.
                if matches!(
                    self.state,
                    WebCliState::Receiving { .. } | WebCliState::AwaitHeader { .. }
                ) {
                    self.transfer_failed(api);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "web-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkParams, Simulator};
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;

    #[test]
    fn object_sizes_deterministic_and_plausible() {
        let a = object_size(7, 99);
        let b = object_size(7, 99);
        assert_eq!(a, b);
        let sizes: Vec<usize> = (0..2000).map(|i| object_size(i, 1)).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((2_000.0..15_000.0).contains(&mean), "mean {mean}");
        assert!(*sizes.iter().max().unwrap() < 70_000);
        assert!(*sizes.iter().min().unwrap() >= 400);
    }

    #[test]
    fn trace_has_revisits() {
        let t = search_task_trace(5, 50, 42);
        assert_eq!(t.len(), 250);
        let unique: HashSet<_> = t.iter().collect();
        assert!(unique.len() < t.len(), "no revisits generated");
        // Users are in disjoint id spaces.
        assert!(t[..50].iter().all(|&id| id < 10_000));
        assert!(t[200..].iter().all(|&id| (40_000..50_000).contains(&id)));
    }

    #[test]
    fn replay_completes_on_clean_network() {
        let ip_c = Ipv4Addr::new(10, 0, 0, 1);
        let ip_s = Ipv4Addr::new(10, 0, 0, 2);
        let trace = search_task_trace(2, 10, 7);
        let n_refs = trace.len() as u32;
        let mut ch = Host::new(
            HostConfig::new("browser", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
        );
        let mut client = WebClient::new(ip_s, trace);
        client.processing = SimDuration::from_millis(50);
        let app = ch.add_app(Box::new(client));
        let mut sh = Host::new(
            HostConfig::new("webserver", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
        );
        sh.add_app(Box::new(WebServer::new(0)));
        let mut sim = Simulator::new(5);
        let nc = sim.add_node(Box::new(ch));
        let ns = sim.add_node(Box::new(sh));
        sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
        start_host(&mut sim, ns, SimTime::ZERO);
        start_host(&mut sim, nc, SimTime::from_millis(5));
        sim.run_until(SimTime::from_secs(120));
        let c: &WebClient = sim.node::<Host>(nc).app(app);
        assert!(c.is_done(), "fetched {} of {}", c.fetched, n_refs);
        assert_eq!(c.fetched + c.cache_hits, n_refs);
        assert_eq!(c.failures, 0);
        assert!(c.cache_hits > 0);
        let secs = c.elapsed().unwrap().as_secs_f64();
        assert!(secs > 1.0 && secs < 60.0, "{secs}");
    }
}
