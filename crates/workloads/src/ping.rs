//! The known collection workload (§3.1.1, §3.2.2): a modified `ping`
//! sending one group of three probes each second — a small ECHO of size
//! `s1`, then (once its reply returns) two back-to-back large ECHOs of
//! size `s2`. Sequence numbers encode the group: group `g` uses
//! `3g, 3g+1, 3g+2`.

use netsim::{SimDuration, SimTime};
use netstack::{App, AppEvent, HostApi};
use std::net::Ipv4Addr;

const TIMER_GROUP: u32 = 1;
const TIMER_STAGE1_TIMEOUT: u32 = 2;

/// Configuration of the probing workload.
#[derive(Debug, Clone)]
pub struct PingConfig {
    /// Target host.
    pub target: Ipv4Addr,
    /// ICMP identifier (the pinger's "process id").
    pub ident: u16,
    /// Payload bytes of the small probe (`s1` counts the echo payload).
    pub s1: usize,
    /// Payload bytes of each large probe.
    pub s2: usize,
    /// Group interval.
    pub interval: SimDuration,
    /// How long to wait for the stage-1 reply before giving up on the
    /// group's second stage.
    pub stage1_timeout: SimDuration,
    /// Total probing duration; the workload stops afterwards.
    pub duration: SimDuration,
}

impl PingConfig {
    /// The paper's collection workload against `target`.
    pub fn paper(target: Ipv4Addr) -> Self {
        PingConfig {
            target,
            ident: 77,
            s1: 64,
            s2: 500,
            interval: SimDuration::from_secs(1),
            stage1_timeout: SimDuration::from_millis(900),
            duration: SimDuration::from_secs(180),
        }
    }
}

/// The probing application. It does not itself record anything — the
/// trace collector at the device layer observes its packets, exactly as
/// in the paper. It does keep counters for diagnostics.
pub struct PingWorkload {
    cfg: PingConfig,
    group: u16,
    started: Option<SimTime>,
    awaiting_stage1: Option<u16>,
    /// Groups begun.
    pub groups_sent: u32,
    /// Stage-1 replies that arrived in time.
    pub stage1_replies: u32,
    /// Replies seen in total (all stages).
    pub replies: u32,
    /// True once the configured duration has elapsed.
    pub finished: bool,
}

impl PingWorkload {
    /// New workload from a configuration.
    pub fn new(cfg: PingConfig) -> Self {
        PingWorkload {
            cfg,
            group: 0,
            started: None,
            awaiting_stage1: None,
            groups_sent: 0,
            stage1_replies: 0,
            replies: 0,
            finished: false,
        }
    }

    fn start_group(&mut self, api: &mut HostApi<'_, '_>) {
        let started = self.started.expect("start_group after Start");
        if api.now().since(started) >= self.cfg.duration {
            self.finished = true;
            return;
        }
        let seq = self.group.wrapping_mul(3);
        api.send_ping(self.cfg.target, self.cfg.ident, seq, self.cfg.s1);
        self.awaiting_stage1 = Some(seq);
        self.groups_sent += 1;
        api.set_timer(self.cfg.stage1_timeout, TIMER_STAGE1_TIMEOUT);
        api.set_timer(self.cfg.interval, TIMER_GROUP);
    }
}

impl App for PingWorkload {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                api.icmp_listen();
                self.started = Some(api.now());
                self.start_group(api);
            }
            AppEvent::Timer { token: TIMER_GROUP } => {
                self.group = self.group.wrapping_add(1);
                self.awaiting_stage1 = None;
                self.start_group(api);
            }
            AppEvent::Timer {
                token: TIMER_STAGE1_TIMEOUT,
            } => {
                // Reply never came: the group stays incomplete (loss
                // accounting still sees the unanswered probe).
                self.awaiting_stage1 = None;
            }
            AppEvent::IcmpEchoReply { ident, seq, .. } if ident == self.cfg.ident => {
                self.replies += 1;
                if self.awaiting_stage1 == Some(seq) {
                    self.awaiting_stage1 = None;
                    self.stage1_replies += 1;
                    // Stage 2: two large probes, back to back.
                    api.send_ping(self.cfg.target, self.cfg.ident, seq + 1, self.cfg.s2);
                    api.send_ping(self.cfg.target, self.cfg.ident, seq + 2, self.cfg.s2);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ping-workload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkParams, Simulator};
    use netstack::{start_host, Host, HostConfig};
    use packet::MacAddr;

    fn setup(cfg: PingConfig) -> (Simulator, netsim::NodeId, netstack::AppId) {
        let ip_a = Ipv4Addr::new(10, 0, 0, 1);
        let ip_b = Ipv4Addr::new(10, 0, 0, 2);
        let mut a = Host::new(
            HostConfig::new("pinger", ip_a, MacAddr::local(1)).with_arp(ip_b, MacAddr::local(2)),
        );
        let app = a.add_app(Box::new(PingWorkload::new(cfg)));
        let b = Host::new(
            HostConfig::new("target", ip_b, MacAddr::local(2)).with_arp(ip_a, MacAddr::local(1)),
        );
        let mut sim = Simulator::new(3);
        let na = sim.add_node(Box::new(a));
        let nb = sim.add_node(Box::new(b));
        sim.connect_sym(
            na,
            netstack::NIC_PORT,
            nb,
            netstack::NIC_PORT,
            LinkParams::ethernet_10mbps(),
        );
        start_host(&mut sim, na, SimTime::ZERO);
        start_host(&mut sim, nb, SimTime::ZERO);
        (sim, na, app)
    }

    #[test]
    fn sends_triplet_groups_once_per_second() {
        let mut cfg = PingConfig::paper(Ipv4Addr::new(10, 0, 0, 2));
        cfg.duration = SimDuration::from_secs(10);
        let (mut sim, na, app) = setup(cfg);
        sim.run_until(SimTime::from_secs(15));
        let host: &Host = sim.node(na);
        let w: &PingWorkload = host.app(app);
        assert_eq!(w.groups_sent, 10);
        assert_eq!(w.stage1_replies, 10);
        // All 30 probes answered on a clean Ethernet.
        assert_eq!(w.replies, 30);
        assert!(w.finished);
        // 3 frames out per group.
        assert_eq!(host.core().stats().frames_out, 30);
    }

    #[test]
    fn stage1_timeout_skips_stage_two() {
        // Target never answers (no route: point ping at an absent IP).
        let mut cfg = PingConfig::paper(Ipv4Addr::new(10, 0, 0, 99));
        cfg.duration = SimDuration::from_secs(5);
        let (mut sim, na, app) = setup(cfg);
        sim.run_until(SimTime::from_secs(10));
        let host: &Host = sim.node(na);
        let w: &PingWorkload = host.app(app);
        assert_eq!(w.groups_sent, 5);
        assert_eq!(w.replies, 0);
        // Only the small probes went out.
        assert_eq!(host.core().stats().frames_out, 5);
    }
}
