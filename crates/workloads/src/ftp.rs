//! The FTP benchmark (§4.2): a single large disk-to-disk transfer, both
//! to ("send"/store) and from ("recv"/fetch) the mobile host, over TCP.
//!
//! Protocol: the client connects and sends one command line —
//! `SEND <n>\n` followed by `n` bytes of data, or `RECV <n>\n` after
//! which the server streams `n` bytes. The server answers a completed
//! SEND with `OK\n`. Completion is measured at the client: for SEND,
//! when `OK` arrives; for RECV, when the last byte arrives.

use netsim::SimTime;
use netstack::{App, AppEvent, HostApi, TcpHandle};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Default FTP data port.
pub const FTP_PORT: u16 = 2021;

/// Transfer direction, from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtpDirection {
    /// Client uploads (the paper's "send"/store).
    Send,
    /// Client downloads (the paper's "recv"/fetch).
    Recv,
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

enum SrvConn {
    AwaitCommand { line: Vec<u8> },
    Receiving { remaining: usize },
    Sending { remaining: usize },
}

/// The FTP server application.
pub struct FtpServer {
    /// Listening port.
    pub port: u16,
    conns: HashMap<TcpHandle, SrvConn>,
    /// Completed transfers (diagnostics).
    pub completed: u32,
    chunk: usize,
}

impl FtpServer {
    /// Server on the default port.
    pub fn new() -> Self {
        FtpServer {
            port: FTP_PORT,
            conns: HashMap::new(),
            completed: 0,
            chunk: 8192,
        }
    }

    fn pump_send(&mut self, conn: TcpHandle, api: &mut HostApi<'_, '_>) {
        let Some(SrvConn::Sending { remaining }) = self.conns.get_mut(&conn) else {
            return;
        };
        while *remaining > 0 {
            let n = (*remaining).min(self.chunk);
            let sent = api.tcp_send(conn, &vec![0x46u8; n]);
            *remaining -= sent;
            if sent < n {
                return; // backpressure: wait for SendSpace
            }
        }
        api.tcp_close(conn);
        self.completed += 1;
        self.conns.remove(&conn);
    }

    fn on_data(&mut self, conn: TcpHandle, data: Vec<u8>, api: &mut HostApi<'_, '_>) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        match state {
            SrvConn::AwaitCommand { line } => {
                line.extend_from_slice(&data);
                let Some(pos) = line.iter().position(|&b| b == b'\n') else {
                    return;
                };
                let cmd = String::from_utf8_lossy(&line[..pos]).to_string();
                let body: Vec<u8> = line[pos + 1..].to_vec();
                let mut parts = cmd.split_whitespace();
                let verb = parts.next().unwrap_or("");
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                match verb {
                    "SEND" => {
                        *state = SrvConn::Receiving {
                            remaining: n.saturating_sub(body.len()),
                        };
                        if let Some(SrvConn::Receiving { remaining }) = self.conns.get(&conn) {
                            if *remaining == 0 {
                                api.tcp_send(conn, b"OK\n");
                                self.completed += 1;
                                self.conns.remove(&conn);
                            }
                        }
                    }
                    "RECV" => {
                        *state = SrvConn::Sending { remaining: n };
                        self.pump_send(conn, api);
                    }
                    _ => {
                        api.tcp_abort(conn);
                        self.conns.remove(&conn);
                    }
                }
            }
            SrvConn::Receiving { remaining } => {
                *remaining = remaining.saturating_sub(data.len());
                if *remaining == 0 {
                    api.tcp_send(conn, b"OK\n");
                    self.completed += 1;
                    self.conns.remove(&conn);
                }
            }
            SrvConn::Sending { .. } => { /* unexpected client data: ignore */ }
        }
    }
}

impl Default for FtpServer {
    fn default() -> Self {
        FtpServer::new()
    }
}

impl App for FtpServer {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => api.tcp_listen(self.port),
            AppEvent::TcpAccepted { conn, .. } => {
                self.conns.insert(conn, SrvConn::AwaitCommand { line: Vec::new() });
            }
            AppEvent::TcpData { conn, data } => self.on_data(conn, data, api),
            AppEvent::TcpSendSpace { conn } => self.pump_send(conn, api),
            AppEvent::TcpPeerClosed { conn }
                // Client finished a RECV and closed; close our side too.
                if !self.conns.contains_key(&conn) => {
                    api.tcp_close(conn);
                }
            AppEvent::TcpReset { conn, .. } | AppEvent::TcpClosed { conn } => {
                self.conns.remove(&conn);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ftp-server"
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

enum CliState {
    Idle,
    Connecting,
    Sending { remaining: usize },
    AwaitingOk,
    Receiving { remaining: usize },
    Done,
}

const WATCHDOG_TIMER: u32 = 0xDEAD;

/// The FTP client application: performs one transfer at Start.
pub struct FtpClient {
    /// Server address.
    pub server: (Ipv4Addr, u16),
    /// Transfer direction.
    pub direction: FtpDirection,
    /// Transfer size in bytes (the paper uses 10 MB).
    pub size: usize,
    state: CliState,
    conn: Option<TcpHandle>,
    /// When the transfer began.
    pub started_at: Option<SimTime>,
    /// When the transfer completed.
    pub finished_at: Option<SimTime>,
    /// Error, if the transfer failed.
    pub error: Option<&'static str>,
    /// Abort if no forward progress for this long (a real client's
    /// transfer timeout; also protects against a silently-dead peer
    /// behind a total blackout).
    pub idle_timeout: netsim::SimDuration,
    last_progress: Option<SimTime>,
    chunk: usize,
}

impl FtpClient {
    /// Client performing one `direction` transfer of `size` bytes.
    pub fn new(server: Ipv4Addr, direction: FtpDirection, size: usize) -> Self {
        FtpClient {
            server: (server, FTP_PORT),
            direction,
            size,
            state: CliState::Idle,
            conn: None,
            started_at: None,
            finished_at: None,
            error: None,
            idle_timeout: netsim::SimDuration::from_secs(300),
            last_progress: None,
            chunk: 8192,
        }
    }

    /// Elapsed transfer time, if complete.
    pub fn elapsed(&self) -> Option<netsim::SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }

    /// True once finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some() || self.error.is_some()
    }

    fn pump(&mut self, api: &mut HostApi<'_, '_>) {
        let Some(conn) = self.conn else { return };
        let CliState::Sending { remaining } = &mut self.state else {
            return;
        };
        while *remaining > 0 {
            let n = (*remaining).min(self.chunk);
            let sent = api.tcp_send(conn, &vec![0x55u8; n]);
            *remaining -= sent;
            if sent < n {
                return;
            }
        }
        self.state = CliState::AwaitingOk;
    }

    fn finish(&mut self, api: &mut HostApi<'_, '_>) {
        self.finished_at = Some(api.now());
        self.state = CliState::Done;
        if let Some(conn) = self.conn.take() {
            api.tcp_close(conn);
        }
    }
}

impl App for FtpClient {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.started_at = Some(api.now());
                self.last_progress = Some(api.now());
                self.state = CliState::Connecting;
                self.conn = Some(api.tcp_connect(self.server));
                let wd = self.idle_timeout;
                api.set_timer(wd, WATCHDOG_TIMER);
            }
            AppEvent::Timer {
                token: WATCHDOG_TIMER,
            } => {
                if self.is_done() {
                    return;
                }
                let idle = self
                    .last_progress
                    .map(|t| api.now().since(t))
                    .unwrap_or(netsim::SimDuration::ZERO);
                if idle >= self.idle_timeout {
                    self.error = Some("transfer timed out");
                    if let Some(conn) = self.conn.take() {
                        api.tcp_abort(conn);
                    }
                } else {
                    let wd = self.idle_timeout - idle;
                    api.set_timer(wd, WATCHDOG_TIMER);
                }
            }
            AppEvent::TcpConnected { conn } if Some(conn) == self.conn => match self.direction {
                FtpDirection::Send => {
                    api.tcp_send(conn, format!("SEND {}\n", self.size).as_bytes());
                    self.state = CliState::Sending {
                        remaining: self.size,
                    };
                    self.pump(api);
                }
                FtpDirection::Recv => {
                    api.tcp_send(conn, format!("RECV {}\n", self.size).as_bytes());
                    self.state = CliState::Receiving {
                        remaining: self.size,
                    };
                }
            },
            AppEvent::TcpSendSpace { conn } if Some(conn) == self.conn => {
                self.last_progress = Some(api.now());
                self.pump(api);
            }
            AppEvent::TcpData { conn, data } if Some(conn) == self.conn => {
                self.last_progress = Some(api.now());
                match &mut self.state {
                    CliState::AwaitingOk
                        if (data.windows(3).any(|w| w == b"OK\n") || data.ends_with(b"OK\n")) =>
                    {
                        self.finish(api);
                    }
                    CliState::Receiving { remaining } => {
                        *remaining = remaining.saturating_sub(data.len());
                        if *remaining == 0 {
                            self.finish(api);
                        }
                    }
                    _ => {}
                }
            }
            AppEvent::TcpReset { conn, reason } if Some(conn) == self.conn => {
                self.error = Some(reason);
                self.conn = None;
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ftp-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkParams, Simulator};
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;

    fn run_transfer(direction: FtpDirection, size: usize) -> (f64, bool) {
        let ip_c = Ipv4Addr::new(10, 0, 0, 1);
        let ip_s = Ipv4Addr::new(10, 0, 0, 2);
        let mut client_host = Host::new(
            HostConfig::new("client", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
        );
        let app = client_host.add_app(Box::new(FtpClient::new(ip_s, direction, size)));
        let mut server_host = Host::new(
            HostConfig::new("server", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
        );
        server_host.add_app(Box::new(FtpServer::new()));

        let mut sim = Simulator::new(11);
        let nc = sim.add_node(Box::new(client_host));
        let ns = sim.add_node(Box::new(server_host));
        sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
        start_host(&mut sim, ns, SimTime::ZERO);
        start_host(&mut sim, nc, SimTime::from_millis(10));
        sim.run_until(SimTime::from_secs(120));
        let c: &FtpClient = sim.node::<Host>(nc).app(app);
        (
            c.elapsed().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
            c.is_done(),
        )
    }

    #[test]
    fn send_completes_at_wire_speed_scale() {
        let (secs, done) = run_transfer(FtpDirection::Send, 2_000_000);
        assert!(done);
        // 2 MB over 10 Mb/s ≈ 1.7 s ideal; allow up to 4 s.
        assert!(secs > 1.5 && secs < 4.0, "{secs}");
    }

    #[test]
    fn recv_completes_at_wire_speed_scale() {
        let (secs, done) = run_transfer(FtpDirection::Recv, 2_000_000);
        assert!(done);
        assert!(secs > 1.5 && secs < 4.0, "{secs}");
    }

    #[test]
    fn small_transfers_work_both_ways() {
        for dir in [FtpDirection::Send, FtpDirection::Recv] {
            let (secs, done) = run_transfer(dir, 100);
            assert!(done, "{dir:?}");
            assert!(secs < 1.0, "{dir:?}: {secs}");
        }
    }
}
