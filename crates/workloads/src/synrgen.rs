//! A SynRGen-style synthetic file-reference generator (§4.1.4).
//!
//! SynRGen models a user in an edit-debug cycle over NFS: bursts of file
//! activity (reads of sources, writes of objects) separated by think
//! time. The Chatterbox *channel* reproduces the medium-level effect of
//! five such users; this application-level generator exists for running
//! real interfering load against an [`crate::nfs::NfsServer`] in
//! end-to-end experiments and examples.

use crate::nfs::{name_hash, NfsProc, RpcClient, ROOT_HANDLE, RPC_RETRANS_TIMER};
use netsim::SimDuration;
use netstack::{App, AppEvent, HostApi};
use std::net::Ipv4Addr;

const THINK_TIMER: u32 = 0x51;

/// Edit-debug cycle parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynRGenConfig {
    /// Operations per burst (the "debug" half of the cycle).
    pub burst_ops: (u32, u32),
    /// Think time between bursts, seconds (the "edit" half).
    pub think_secs: (f64, f64),
    /// Fraction of burst ops that are data ops (READ/WRITE) vs status
    /// checks.
    pub data_fraction: f64,
    /// Stop after this many bursts (0 = run forever).
    pub max_bursts: u32,
}

impl Default for SynRGenConfig {
    fn default() -> Self {
        SynRGenConfig {
            burst_ops: (15, 80),
            think_secs: (0.5, 4.0),
            data_fraction: 0.4,
            max_bursts: 0,
        }
    }
}

/// One synthetic user.
pub struct SynRGenUser {
    rpc: RpcClient,
    cfg: SynRGenConfig,
    file: u32,
    ops_left: u32,
    bursts: u32,
    /// Operations completed (diagnostics).
    pub ops_done: u64,
    /// True when `max_bursts` reached.
    pub finished: bool,
    seed_salt: u64,
}

impl SynRGenUser {
    /// A user working against the NFS server at `server`.
    pub fn new(server: Ipv4Addr, cfg: SynRGenConfig, seed_salt: u64) -> Self {
        SynRGenUser {
            rpc: RpcClient::new(server),
            cfg,
            file: 0,
            ops_left: 0,
            bursts: 0,
            ops_done: 0,
            finished: false,
            seed_salt,
        }
    }

    fn begin_burst(&mut self, api: &mut HostApi<'_, '_>) {
        if self.cfg.max_bursts > 0 && self.bursts >= self.cfg.max_bursts {
            self.finished = true;
            return;
        }
        self.bursts += 1;
        let (lo, hi) = self.cfg.burst_ops;
        self.ops_left = api.rng().range_u64(lo as u64, hi as u64 + 1) as u32;
        self.next_op(api);
    }

    fn next_op(&mut self, api: &mut HostApi<'_, '_>) {
        if self.ops_left == 0 {
            // Think, then burst again.
            let (lo, hi) = self.cfg.think_secs;
            let think = api.rng().range_f64(lo, hi);
            api.set_timer(SimDuration::from_secs_f64(think), THINK_TIMER);
            return;
        }
        self.ops_left -= 1;
        let data = {
            let f = self.cfg.data_fraction;
            api.rng().chance(f)
        };
        if self.file == 0 {
            // Ensure a working file exists.
            let name = name_hash(&format!("synrgen-{}", self.seed_salt));
            self.rpc.call(api, NfsProc::Create, ROOT_HANDLE, name, 0, 0);
        } else if data {
            if api.rng().chance(0.5) {
                self.rpc.call(
                    api,
                    NfsProc::Write,
                    self.file,
                    0,
                    crate::nfs::BLOCK as u32,
                    crate::nfs::BLOCK,
                );
            } else {
                self.rpc.call(
                    api,
                    NfsProc::Read,
                    self.file,
                    0,
                    crate::nfs::BLOCK as u32,
                    0,
                );
            }
        } else {
            self.rpc.call(api, NfsProc::GetAttr, self.file, 0, 0, 0);
        }
    }
}

impl App for SynRGenUser {
    fn on_event(&mut self, event: AppEvent, api: &mut HostApi<'_, '_>) {
        match event {
            AppEvent::Start => {
                self.rpc.port = api.udp_bind_ephemeral();
                self.begin_burst(api);
            }
            AppEvent::UdpDatagram { data, .. } => {
                if let Some((status, value, _)) = self.rpc.on_datagram(&data) {
                    if self.file == 0 && status == 0 {
                        self.file = value;
                    }
                    self.ops_done += 1;
                    self.next_op(api);
                }
            }
            AppEvent::Timer { token: THINK_TIMER } => self.begin_burst(api),
            AppEvent::Timer {
                token: RPC_RETRANS_TIMER,
            } => self.rpc.on_timer(api),
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "synrgen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs::NfsServer;
    use netsim::{LinkParams, SimTime, Simulator};
    use netstack::{start_host, Host, HostConfig, NIC_PORT};
    use packet::MacAddr;

    #[test]
    fn user_generates_bursty_traffic_and_finishes() {
        let ip_c = Ipv4Addr::new(10, 0, 0, 1);
        let ip_s = Ipv4Addr::new(10, 0, 0, 2);
        let mut ch = Host::new(
            HostConfig::new("laptop", ip_c, MacAddr::local(1)).with_arp(ip_s, MacAddr::local(2)),
        );
        let cfg = SynRGenConfig {
            max_bursts: 5,
            ..Default::default()
        };
        let app = ch.add_app(Box::new(SynRGenUser::new(ip_s, cfg, 1)));
        let mut sh = Host::new(
            HostConfig::new("nfs", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
        );
        sh.add_app(Box::new(NfsServer::new()));
        let mut sim = Simulator::new(21);
        let nc = sim.add_node(Box::new(ch));
        let ns = sim.add_node(Box::new(sh));
        sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
        start_host(&mut sim, ns, SimTime::ZERO);
        start_host(&mut sim, nc, SimTime::from_millis(1));
        sim.run_until(SimTime::from_secs(120));
        let u: &SynRGenUser = sim.node::<Host>(nc).app(app);
        assert!(u.finished);
        assert!(u.ops_done >= 5 * 15, "{}", u.ops_done);
        // Both message classes were exercised.
        let srv_served = sim
            .node::<Host>(ns)
            .app::<NfsServer>(netstack::AppId(0))
            .served;
        assert!(srv_served.0 > 0, "no status checks");
        assert!(srv_served.1 > 0, "no data ops");
    }

    #[test]
    fn two_users_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let ip_c = Ipv4Addr::new(10, 0, 0, 1);
            let ip_s = Ipv4Addr::new(10, 0, 0, 2);
            let mut ch = Host::new(
                HostConfig::new("laptop", ip_c, MacAddr::local(1))
                    .with_arp(ip_s, MacAddr::local(2)),
            );
            let cfg = SynRGenConfig {
                max_bursts: 3,
                ..Default::default()
            };
            let a1 = ch.add_app(Box::new(SynRGenUser::new(ip_s, cfg, 1)));
            let a2 = ch.add_app(Box::new(SynRGenUser::new(ip_s, cfg, 2)));
            let mut sh = Host::new(
                HostConfig::new("nfs", ip_s, MacAddr::local(2)).with_arp(ip_c, MacAddr::local(1)),
            );
            sh.add_app(Box::new(NfsServer::new()));
            let mut sim = Simulator::new(seed);
            let nc = sim.add_node(Box::new(ch));
            let ns = sim.add_node(Box::new(sh));
            sim.connect_sym(nc, NIC_PORT, ns, NIC_PORT, LinkParams::ethernet_10mbps());
            start_host(&mut sim, ns, SimTime::ZERO);
            start_host(&mut sim, nc, SimTime::from_millis(1));
            sim.run_until(SimTime::from_secs(120));
            let h: &Host = sim.node(nc);
            (
                h.app::<SynRGenUser>(a1).ops_done,
                h.app::<SynRGenUser>(a2).ops_done,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
