//! # workloads — the paper's benchmarks and workload generators
//!
//! * [`ping`] — the known collection workload: one small + two
//!   back-to-back large ICMP echoes per second (§3.2.2);
//! * [`ftp`] — the 10 MB disk-to-disk transfer, both directions (§4.2);
//! * [`web`] — the private-server World-Wide-Web trace replay (§4.2);
//! * [`nfs`] — the NFS-like UDP RPC substrate the Andrew benchmark runs
//!   on (server, client RPC engine with retransmission);
//! * [`andrew`] — the five-phase Andrew benchmark (§4.2, Figure 8);
//! * [`synrgen`] — a SynRGen-style synthetic file-reference generator
//!   (the Chatterbox interfering users, §4.1.4).
//!
//! All of these are [`netstack::App`]s: they run unmodified above the
//! socket layer, oblivious to tracing and modulation underneath — the
//! transparency property the paper's methodology requires.

#![warn(missing_docs)]

pub mod andrew;
pub mod ftp;
pub mod nfs;
pub mod ping;
pub mod synrgen;
pub mod web;

pub use andrew::{AndrewBenchmark, AndrewConfig, Phase, PhaseTiming};
pub use ftp::{FtpClient, FtpDirection, FtpServer, FTP_PORT};
pub use nfs::{NfsProc, NfsServer, RpcClient, NFS_PORT};
pub use ping::{PingConfig, PingWorkload};
pub use synrgen::{SynRGenConfig, SynRGenUser};
pub use web::{search_task_trace, WebClient, WebServer, WEB_PORT};
